//! Workspace-wide symbol table over per-file [`ParsedFile`]s.
//!
//! The table maps every parsed function to a fully-qualified module path
//! derived from its file's workspace-relative path (`crates/<c>/src/a/b.rs`
//! → crate ident `tnpu_<c>`, module `a::b`, matching the workspace's
//! `tnpu-<c>` → `tnpu_<c>` package naming), and resolves call paths through
//! `use` declarations (including `as` renames and glob imports), `crate`/
//! `self`/`super` prefixes, and `Self` in impl blocks.
//!
//! Resolution is deliberately *name-level*, not type-level: a path call
//! `RawDram::new()` resolves confidently to the one `impl RawDram` block in
//! the workspace, but a method call `.read_block()` on an unknown receiver
//! resolves to *every* method of that name. The call-graph layer treats
//! those two edge classes differently (see `callgraph.rs`).

use crate::parser::{CallSite, EnumItem, FnItem, ParsedFile, PathRef};
use std::collections::{BTreeMap, BTreeSet};

/// Index of a function node in [`Workspace::fns`].
pub type FnId = usize;

/// One analyzed file: its path plus parse results.
#[derive(Debug)]
pub struct FileEntry {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// Parse results.
    pub parsed: ParsedFile,
    /// Inclusive `#[cfg(test)]` line ranges (from the lexer).
    pub test_regions: Vec<(u32, u32)>,
}

impl FileEntry {
    /// Whether `line` is inside a `#[cfg(test)]` region of this file.
    #[must_use]
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }
}

/// One function in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The parsed item (name, container, calls, panics, lines).
    pub item: FnItem,
    /// Fully-qualified module path: crate ident + file module + inline
    /// modules (`["tnpu_memprot", "functional", "dram"]`).
    pub fq_module: Vec<String>,
}

impl FnNode {
    /// Display name for diagnostics: `Type::name` or `module::name`.
    #[must_use]
    pub fn display(&self) -> String {
        match &self.item.container {
            Some(c) => format!("{}::{}", c.type_name, self.item.name),
            None => match self.fq_module.last() {
                Some(m) => format!("{m}::{}", self.item.name),
                None => self.item.name.clone(),
            },
        }
    }
}

/// One enum definition with its defining location.
#[derive(Debug)]
pub struct EnumDef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The parsed enum.
    pub item: EnumItem,
}

/// One file's `use`-alias table: `(inline module path, alias) -> full
/// imported path`.
type AliasMap = BTreeMap<(Vec<String>, String), Vec<String>>;

/// The assembled workspace: all files, all functions, and lookup tables.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All analyzed files.
    pub files: Vec<FileEntry>,
    /// All function nodes.
    pub fns: Vec<FnNode>,
    /// All enum definitions.
    pub enums: Vec<EnumDef>,
    /// `type name -> trait names it implements` (bare last segments).
    pub trait_impls: BTreeMap<String, BTreeSet<String>>,
    /// Free functions by fully-qualified `crate::mod::name` path.
    free_fns: BTreeMap<String, Vec<FnId>>,
    /// Methods by `(bare type name, method name)`.
    methods_by_type: BTreeMap<(String, String), Vec<FnId>>,
    /// Methods by bare name (for `.m()` calls with unknown receiver).
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    /// Per file: `(inline module, alias) -> full imported path`.
    aliases: Vec<AliasMap>,
    /// Per file: glob-import prefixes with their declaring inline module.
    globs: Vec<Vec<(Vec<String>, Vec<String>)>>,
    /// Every crate ident present (for absolute-path detection).
    crate_idents: BTreeSet<String>,
}

/// Crate ident for a workspace-relative path: `crates/mem-prot/...` →
/// `tnpu_mem_prot`, the root `src/` tree → `tnpu`.
#[must_use]
pub fn crate_ident(path: &str) -> String {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => match parts.next() {
            Some(name) => format!("tnpu_{}", name.replace('-', "_")),
            None => "tnpu".to_owned(),
        },
        _ => "tnpu".to_owned(),
    }
}

/// Module path a file contributes (`crates/c/src/a/b.rs` → `["a", "b"]`,
/// `lib.rs`/`main.rs`/`mod.rs` following the usual conventions). Files
/// outside `src/` (integration tests, benches) get their directory chain as
/// a pseudo-module so their symbols cannot collide with library paths.
#[must_use]
pub fn file_module(path: &str) -> Vec<String> {
    let rel: Vec<&str> = path.split('/').collect();
    // Drop the `crates/<name>` prefix if present.
    let rest = if rel.first() == Some(&"crates") && rel.len() > 2 {
        &rel[2..]
    } else {
        &rel[..]
    };
    let mut comps: Vec<&str> = if rest.first() == Some(&"src") {
        rest[1..].to_vec()
    } else {
        rest.to_vec()
    };
    let Some(last) = comps.pop() else {
        return Vec::new();
    };
    let stem = last.strip_suffix(".rs").unwrap_or(last);
    let mut out: Vec<String> = comps.iter().map(|s| (*s).to_owned()).collect();
    if !matches!(stem, "lib" | "main" | "mod") {
        out.push(stem.to_owned());
    }
    out
}

impl Workspace {
    /// Assemble the table from parsed files.
    #[must_use]
    pub fn build(files: Vec<FileEntry>) -> Self {
        let mut ws = Workspace::default();
        for entry in &files {
            ws.crate_idents.insert(crate_ident(&entry.path));
        }
        for (fi, entry) in files.iter().enumerate() {
            let base = {
                let mut m = vec![crate_ident(&entry.path)];
                m.extend(file_module(&entry.path));
                m
            };
            let mut alias_map = BTreeMap::new();
            let mut glob_list = Vec::new();
            for u in &entry.parsed.uses {
                let path = ws.expand_crate_head(&u.path, &base);
                if u.glob {
                    glob_list.push((u.module.clone(), path));
                } else {
                    alias_map.insert((u.module.clone(), u.alias.clone()), path);
                }
            }
            ws.aliases.push(alias_map);
            ws.globs.push(glob_list);

            for item in &entry.parsed.fns {
                let id = ws.fns.len();
                let mut fq = base.clone();
                fq.extend(item.module.iter().cloned());
                match &item.container {
                    Some(c) => {
                        ws.methods_by_type
                            .entry((c.type_name.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                        ws.methods_by_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                        if let Some(t) = &c.trait_name {
                            ws.trait_impls
                                .entry(c.type_name.clone())
                                .or_default()
                                .insert(t.clone());
                        }
                    }
                    None => {
                        let mut key = fq.join("::");
                        key.push_str("::");
                        key.push_str(&item.name);
                        ws.free_fns.entry(key).or_default().push(id);
                    }
                }
                ws.fns.push(FnNode {
                    file: fi,
                    item: item.clone(),
                    fq_module: fq,
                });
            }
            for e in &entry.parsed.enums {
                ws.enums.push(EnumDef {
                    file: fi,
                    item: e.clone(),
                });
            }
        }
        ws.files = files;
        ws
    }

    /// Rewrite a path head of `crate`/`self`/`super` against `base`
    /// (crate ident + file module).
    fn expand_crate_head(&self, path: &[String], base: &[String]) -> Vec<String> {
        match path.first().map(String::as_str) {
            Some("crate") => {
                let mut out = vec![base[0].clone()];
                out.extend(path[1..].iter().cloned());
                out
            }
            Some("self") => {
                let mut out = base.to_vec();
                out.extend(path[1..].iter().cloned());
                out
            }
            Some("super") => {
                let mut out = base.to_vec();
                let mut rest = path;
                while rest.first().map(String::as_str) == Some("super") {
                    out.pop();
                    rest = &rest[1..];
                }
                out.extend(rest.iter().cloned());
                out
            }
            _ => path.to_vec(),
        }
    }

    /// The `use` alias expansion visible at `(file, inline module)` for a
    /// bare name, searching the module and its ancestors (a top-of-file
    /// `use` is visible throughout the file — an over-approximation of
    /// Rust's per-module scoping that errs towards resolving more).
    fn lookup_alias(&self, file: usize, module: &[String], name: &str) -> Option<&Vec<String>> {
        let map = self.aliases.get(file)?;
        let mut scope = module.to_vec();
        loop {
            if let Some(path) = map.get(&(scope.clone(), name.to_owned())) {
                return Some(path);
            }
            scope.pop()?;
        }
    }

    /// Resolve a written path from the body of `caller` to an absolute-ish
    /// path (crate-qualified where possible, bare type paths left as-is).
    #[must_use]
    pub fn resolve_path(&self, caller: &FnNode, path: &[String]) -> Vec<String> {
        let Some(head) = path.first() else {
            return Vec::new();
        };
        let file = caller.file;
        let inline = &caller.item.module;
        let base: Vec<String> = {
            // crate ident + file module (fq_module minus nothing — it
            // already includes inline modules; rebuild without them).
            let n = caller.fq_module.len() - inline.len();
            caller.fq_module[..n].to_vec()
        };
        match head.as_str() {
            "crate" => {
                let mut out = vec![caller.fq_module[0].clone()];
                out.extend(path[1..].iter().cloned());
                out
            }
            "self" => {
                let mut out = caller.fq_module.clone();
                out.extend(path[1..].iter().cloned());
                out
            }
            "super" => {
                let mut out = caller.fq_module.clone();
                let mut rest = path;
                while rest.first().map(String::as_str) == Some("super") {
                    out.pop();
                    rest = &rest[1..];
                }
                out.extend(rest.iter().cloned());
                out
            }
            "Self" => {
                let mut out = Vec::new();
                if let Some(c) = &caller.item.container {
                    out.push(c.type_name.clone());
                } else {
                    out.push(head.clone());
                }
                out.extend(path[1..].iter().cloned());
                out
            }
            _ => {
                if let Some(expansion) = self.lookup_alias(file, inline, head) {
                    let mut out = expansion.clone();
                    out.extend(path[1..].iter().cloned());
                    return self.expand_crate_head(&out, &base);
                }
                if self.crate_idents.contains(head) {
                    return path.to_vec();
                }
                // Relative to the defining module.
                let mut out = caller.fq_module.clone();
                out.extend(path.iter().cloned());
                out
            }
        }
    }

    /// Resolve one call site to candidate callees.
    ///
    /// Returns `(candidates, confident)`: a *confident* resolution is a
    /// path-qualified call (`RawDram::new()`, `helper()`, `Self::step()`)
    /// that named its target; a non-confident one is a `.m()` method call
    /// matched by bare name against every method called `m` in the
    /// workspace.
    #[must_use]
    pub fn resolve_call(&self, caller: &FnNode, call: &CallSite) -> (Vec<FnId>, bool) {
        if call.method {
            let name = call.path.last().map(String::as_str).unwrap_or_default();
            return (
                self.methods_by_name.get(name).cloned().unwrap_or_default(),
                false,
            );
        }
        let resolved = self.resolve_path(caller, &call.path);
        if resolved.len() >= 2 {
            if let Some(ids) = self.free_fns.get(&resolved.join("::")) {
                return (ids.clone(), true);
            }
            // Glob imports: `use other::*;` then `helper()`.
            if call.path.len() == 1 {
                if let Some(globs) = self.globs.get(caller.file) {
                    for (_, prefix) in globs {
                        let mut p = prefix.clone();
                        p.push(call.path[0].clone());
                        if let Some(ids) = self.free_fns.get(&p.join("::")) {
                            return (ids.clone(), true);
                        }
                    }
                }
            }
            // `Type::method` — the type is matched by bare name, so this
            // also covers re-exported types (`use memprot::RawDram`).
            let ty = &resolved[resolved.len() - 2];
            let m = &resolved[resolved.len() - 1];
            if let Some(ids) = self.methods_by_type.get(&(ty.clone(), m.clone())) {
                return (ids.clone(), true);
            }
        }
        (Vec::new(), true)
    }

    /// Resolve a variant reference (`VErr::Exhausted`, `Self::Poisoned`)
    /// to `(enum bare name, variant name)` if its second-to-last segment
    /// names (directly, via rename, or via `Self`) a workspace enum.
    #[must_use]
    pub fn resolve_variant_ref(&self, file: usize, r: &PathRef) -> Option<(String, String)> {
        if r.path.len() < 2 {
            return None;
        }
        let variant = r.path.last()?.clone();
        let head = &r.path[r.path.len() - 2];
        let enum_name = if head == "Self" {
            r.container.clone()?
        } else if let Some(expansion) = self.lookup_alias(file, &r.module, head) {
            expansion.last()?.clone()
        } else {
            head.clone()
        };
        Some((enum_name, variant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn entry(path: &str, src: &str) -> FileEntry {
        let lexed = lex(src);
        FileEntry {
            path: path.to_owned(),
            parsed: parse(&lexed),
            test_regions: lexed.test_regions,
        }
    }

    fn node<'a>(ws: &'a Workspace, name: &str) -> &'a FnNode {
        ws.fns
            .iter()
            .find(|f| f.item.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn crate_idents_and_file_modules() {
        assert_eq!(crate_ident("crates/memprot/src/engine.rs"), "tnpu_memprot");
        assert_eq!(crate_ident("crates/mem-prot/src/lib.rs"), "tnpu_mem_prot");
        assert_eq!(crate_ident("src/lib.rs"), "tnpu");
        assert_eq!(
            file_module("crates/memprot/src/functional/dram.rs"),
            vec!["functional", "dram"]
        );
        assert_eq!(
            file_module("crates/memprot/src/functional/mod.rs"),
            vec!["functional"]
        );
        assert!(file_module("crates/core/src/lib.rs").is_empty());
        assert_eq!(
            file_module("crates/core/tests/api.rs"),
            vec!["tests", "api"]
        );
    }

    #[test]
    fn free_fn_resolution_absolute_relative_and_crate() {
        let ws = Workspace::build(vec![
            entry(
                "crates/a/src/util.rs",
                "pub fn helper() {}\npub fn caller() { helper(); crate::util::helper(); }\n",
            ),
            entry(
                "crates/b/src/lib.rs",
                "fn go() { tnpu_a::util::helper(); }\n",
            ),
        ]);
        let caller = node(&ws, "caller");
        let helper_id = ws.fns.iter().position(|f| f.item.name == "helper").unwrap();
        for call in &caller.item.calls {
            let (ids, confident) = ws.resolve_call(caller, call);
            assert_eq!(ids, vec![helper_id], "call {:?}", call.path);
            assert!(confident);
        }
        let go = node(&ws, "go");
        let (ids, _) = ws.resolve_call(go, &go.item.calls[0]);
        assert_eq!(ids, vec![helper_id]);
    }

    #[test]
    fn use_renames_and_globs_resolve_cross_crate() {
        let ws = Workspace::build(vec![
            entry(
                "crates/a/src/lib.rs",
                "pub fn helper() {}\npub fn other() {}\n",
            ),
            entry(
                "crates/b/src/lib.rs",
                "use tnpu_a::helper as h;\nuse tnpu_a::*;\nfn go() { h(); other(); }\n",
            ),
        ]);
        let go = node(&ws, "go");
        let names: Vec<_> = go
            .item
            .calls
            .iter()
            .map(|c| {
                let (ids, conf) = ws.resolve_call(go, c);
                assert!(conf);
                assert_eq!(ids.len(), 1, "call {:?}", c.path);
                ws.fns[ids[0]].item.name.clone()
            })
            .collect();
        assert_eq!(names, vec!["helper", "other"]);
    }

    #[test]
    fn type_method_resolution_is_confident_and_method_calls_are_not() {
        let ws = Workspace::build(vec![
            entry(
                "crates/memprot/src/functional/dram.rs",
                "pub struct RawDram;\nimpl RawDram {\n  pub fn new() -> Self { RawDram }\n  pub fn read_block(&self) {}\n}\n",
            ),
            entry(
                "crates/x/src/lib.rs",
                "use tnpu_memprot::functional::dram::RawDram;\nfn f(d: RawDram) { RawDram::new(); d.read_block(); }\n",
            ),
        ]);
        let f = node(&ws, "f");
        let (ids, conf) = ws.resolve_call(f, &f.item.calls[0]);
        assert!(conf);
        assert_eq!(ws.fns[ids[0]].item.name, "new");
        let (ids, conf) = ws.resolve_call(f, &f.item.calls[1]);
        assert!(!conf, "dot calls are name-matched, not type-resolved");
        assert_eq!(ws.fns[ids[0]].item.name, "read_block");
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let ws = Workspace::build(vec![entry(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n  fn a() { Self::b(); }\n  fn b() {}\n}\n",
        )]);
        let a = node(&ws, "a");
        let (ids, conf) = ws.resolve_call(a, &a.item.calls[0]);
        assert!(conf);
        assert_eq!(ws.fns[ids[0]].item.name, "b");
    }

    #[test]
    fn trait_impls_are_indexed() {
        let ws = Workspace::build(vec![entry(
            "crates/memprot/src/lib.rs",
            "impl ProtectionEngine for TreelessEngine { fn scheme(&self) {} }\nimpl tnpu_memprot::FunctionalMemory for TreelessMemory { fn read(&self) {} }\n",
        )]);
        assert!(ws.trait_impls["TreelessEngine"].contains("ProtectionEngine"));
        assert!(ws.trait_impls["TreelessMemory"].contains("FunctionalMemory"));
    }

    #[test]
    fn variant_refs_resolve_through_renames_and_self() {
        let ws = Workspace::build(vec![
            entry("crates/core/src/version.rs", "pub enum VersionError { Exhausted }\n"),
            entry(
                "crates/x/src/lib.rs",
                "use tnpu_core::version::VersionError as VErr;\nfn f(e: VErr) { match e { VErr::Exhausted => {} } }\n",
            ),
        ]);
        let file_x = ws.files.iter().position(|f| f.path.contains("x")).unwrap();
        let r = &ws.files[file_x].parsed.pattern_refs[0];
        assert_eq!(
            ws.resolve_variant_ref(file_x, r),
            Some(("VersionError".to_owned(), "Exhausted".to_owned()))
        );
    }
}
