//! A minimal hand-rolled Rust lexer.
//!
//! `tnpu-lint` cannot use `syn` or `proc-macro2` — the build container has
//! no registry access, and the linter must be buildable before anything
//! else in the workspace. All its rules are token-pattern rules, so a small
//! lexer is enough: it splits source into identifiers, literals, and
//! punctuation, strips comments and string/char literal *contents* (so
//! `HashMap` inside a doc comment or a message string never trips a rule),
//! and records two pieces of side information the rule engine needs:
//!
//! * `// tnpu-lint: allow(rule-a, rule-b)` escape-hatch comments, mapped to
//!   the lines they cover (the comment's own line and the next line);
//! * `#[cfg(test)]`-gated regions, so rules that exempt test code can skip
//!   diagnostics inside them.

use std::collections::{BTreeMap, BTreeSet};

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, ...).
    Ident,
    /// Integer literal (`42`, `0x9E37`, `1_000u64`).
    Int,
    /// Float literal (`1.5`, `2e9`).
    Float,
    /// String / raw-string / byte-string literal (content dropped).
    Str,
    /// Char literal (content dropped).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-char operators the rules care about (`::`, `+=`,
    /// `*=`, `->`, `=>`, `..`) are fused into one token.
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (empty for string/char literals).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A lexed source file: tokens plus the side tables rules consult.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Token stream, comments and literal contents stripped.
    pub tokens: Vec<Tok>,
    /// `line -> rule ids` allowed starting at that line.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Lines holding `//` comments — allow comments extend through their
    /// contiguous comment block (multi-line justifications).
    pub comment_lines: BTreeSet<u32>,
    /// Lines spanned by outer attributes (`#[derive(..)]`, `#[must_use]`,
    /// ...) — an allow comment written above an attributed item must still
    /// reach the item line below the attributes.
    pub attr_lines: BTreeSet<u32>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
}

impl LexedFile {
    /// Whether `rule` is allowed on `line` by an escape-hatch comment: an
    /// allow comment covers its own line, the rest of its contiguous `//`
    /// comment block, any attribute lines directly below the block, and the
    /// first line after those (the code line the justification is written
    /// for).
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allow_line_for(rule, line).is_some()
    }

    /// Like [`is_allowed`], but returns the line of the allow comment that
    /// fires, so the engine can record which allows were actually used
    /// (`--deny-unused-allows`).
    ///
    /// [`is_allowed`]: LexedFile::is_allowed
    #[must_use]
    pub fn allow_line_for(&self, rule: &str, line: u32) -> Option<u32> {
        self.allows
            .iter()
            .find(|(l, rules)| {
                if !rules.contains(rule) || **l > line {
                    return false;
                }
                let mut end = **l;
                while self.comment_lines.contains(&(end + 1)) {
                    end += 1;
                }
                // Attributes between the justification and its target
                // (`#[derive(..)]`, `#[must_use]`) don't break coverage.
                let mut target = end + 1;
                while self.attr_lines.contains(&target) {
                    target += 1;
                }
                **l <= line && line <= target
            })
            .map(|(l, _)| *l)
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }
}

/// Lex `src` into tokens plus allow/test side tables.
#[must_use]
pub fn lex(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comment_lines.insert(line);
                // Doc comments (`///`, `//!`) are documentation, not
                // directives: text *about* the allow syntax must not
                // create an allow.
                let text = &src[start..i];
                if !text.starts_with("///") && !text.starts_with("//!") {
                    scan_allow_comment(text, line, &mut out.allows);
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Char literal vs lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                    out.tokens.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else {
                    // Lifetime: 'ident (no closing quote).
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_owned(),
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                // Raw-string / byte-string prefixes lex as literals, not
                // identifiers: r"..", r#".."#, b"..", br#".."#, c"..".
                if let Some(next) = raw_literal_end(b, i, &mut line) {
                    i = next;
                    out.tokens.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut float = false;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    if b[i] == b'e' || b[i] == b'E' {
                        // Exponent only counts in decimal literals.
                        if !src[start..i].starts_with("0x")
                            && b.get(i + 1)
                                .is_some_and(|n| n.is_ascii_digit() || *n == b'-' || *n == b'+')
                        {
                            float = true;
                            i += 1; // consume sign/digit below
                        }
                    }
                    i += 1;
                }
                // Fractional part: `1.5` but not `1..4` or `1.method()`.
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    float = true;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                }
                out.tokens.push(Tok {
                    kind: if float { TokKind::Float } else { TokKind::Int },
                    text: src[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                let two = &src[i..(i + 2).min(src.len())];
                const FUSED: &[&str] = &["::", "+=", "-=", "*=", "/=", "->", "=>", ".."];
                if FUSED.contains(&two) {
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: two.to_owned(),
                        line,
                    });
                    i += 2;
                } else {
                    out.tokens.push(Tok {
                        kind: TokKind::Punct,
                        text: src[i..=i].to_owned(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }

    find_test_regions(&out.tokens, &mut out.test_regions);
    find_attr_lines(&out.tokens, &mut out.attr_lines);
    out
}

/// Record every line spanned by an attribute (`#[...]` / `#![...]`), so
/// allow comments can reach past attributes to the item they annotate.
fn find_attr_lines(tokens: &[Tok], attr_lines: &mut BTreeSet<u32>) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct("#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct("[") {
                depth += 1;
            } else if tokens[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end_line = tokens.get(j).map_or(start_line, |t| t.line);
        for line in start_line..=end_line {
            attr_lines.insert(line);
        }
        i = j + 1;
    }
}

/// Skip a `"..."` string starting at `b[i] == b'"'`; returns the index past
/// the closing quote and advances `line` over embedded newlines.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If `b[i..]` starts a raw/byte string literal (`r"`, `r#"`, `br"`, `b"`,
/// `c"`, ...), skip it and return the index past its end.
fn raw_literal_end(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    // Optional b/c prefix, optional r, then hashes+quote or quote.
    if b[j] == b'b' || b[j] == b'c' {
        j += 1;
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    if !raw {
        // Plain (byte) string: reuse escape-aware skipping.
        return Some(skip_string(b, j, line));
    }
    // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
    j += 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
        }
        if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Parse a `// tnpu-lint: allow(rule-a, rule-b)` comment into the allow map.
fn scan_allow_comment(comment: &str, line: u32, allows: &mut BTreeMap<u32, BTreeSet<String>>) {
    let Some(rest) = comment.split("tnpu-lint:").nth(1) else {
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(end) = rest.find(')') else {
        return;
    };
    let rules = rest[..end]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned);
    allows.entry(line).or_default().extend(rules);
}

/// Record the line spans of `#[cfg(test)]`-gated items (the conventional
/// `#[cfg(test)] mod tests { ... }` shape: the next braced block after the
/// attribute, skipping any further attributes).
fn find_test_regions(tokens: &[Tok], regions: &mut Vec<(u32, u32)>) {
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let hit = tokens[i].is_punct("#")
            && tokens[i + 1].is_punct("[")
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct("(")
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(")")
            && tokens[i + 6].is_punct("]");
        if !hit {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Find the gated item's opening brace; bail at `;` (e.g. a gated
        // `use` item) so we never swallow unrelated code.
        let mut j = i + 7;
        while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(";") {
            if j < tokens.len() {
                regions.push((start_line, tokens[j].line));
            }
            i = j;
            continue;
        }
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct("{") {
                depth += 1;
            } else if tokens[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line);
        regions.push((start_line, end_line));
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = lex("// HashMap in a comment\nlet x = \"HashMap\"; /* HashMap */ let y = 1;");
        assert!(!f.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(f.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let f = lex("let s = r#\"HashMap \" inner\"#; let t = b\"HashMap\"; done");
        assert!(!f.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert!(f.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn lines_are_tracked_across_literals() {
        let f = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = f.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn allow_comments_cover_their_line_and_the_next() {
        let f = lex("// tnpu-lint: allow(rule-x, rule-y) — justification\nlet x = 1;\nlet y = 2;");
        assert!(f.is_allowed("rule-x", 1));
        assert!(f.is_allowed("rule-y", 2));
        assert!(!f.is_allowed("rule-x", 3));
        assert!(!f.is_allowed("rule-z", 2));
    }

    #[test]
    fn allow_comments_extend_through_their_comment_block() {
        let f = lex(
            "// tnpu-lint: allow(rule-x) — a justification long enough\n// to continue on a second comment line.\nlet x = 1;\nlet y = 2;",
        );
        assert!(f.is_allowed("rule-x", 2));
        assert!(f.is_allowed("rule-x", 3));
        assert!(!f.is_allowed("rule-x", 4));
    }

    #[test]
    fn allow_comments_reach_past_attributes() {
        let f = lex(
            "// tnpu-lint: allow(rule-x) — the derive forces the name\n#[derive(Debug, Clone)]\n#[must_use]\nstruct S { m: HashMap }\nlet after = 1;",
        );
        assert!(
            f.is_allowed("rule-x", 4),
            "allow must reach past attributes"
        );
        assert!(
            !f.is_allowed("rule-x", 5),
            "coverage stops at the item line"
        );
    }

    #[test]
    fn allow_on_the_last_line_of_a_file_still_registers() {
        // No trailing newline, comment is the final line: the allow must
        // still parse and cover its own line (a trailing same-line allow).
        let f = lex("let m = 1; // tnpu-lint: allow(rule-x) — trailing");
        assert!(f.is_allowed("rule-x", 1));
        let f = lex("let m = 1;\n// tnpu-lint: allow(rule-x) — dangling at EOF");
        assert!(f.is_allowed("rule-x", 2));
    }

    #[test]
    fn blank_line_between_allow_and_target_breaks_coverage() {
        // Documented limitation: a blank line detaches the justification
        // from its target. --deny-unused-allows makes this rot loudly.
        let f = lex("// tnpu-lint: allow(rule-x) — detached\n\nlet m = 1;");
        assert!(!f.is_allowed("rule-x", 3));
    }

    #[test]
    fn allow_line_for_reports_the_firing_comment() {
        let f = lex("// tnpu-lint: allow(rule-x) — why\nlet m = 1;\nlet n = 2;");
        assert_eq!(f.allow_line_for("rule-x", 2), Some(1));
        assert_eq!(f.allow_line_for("rule-x", 3), None);
    }

    #[test]
    fn cfg_test_regions_are_found() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let f = lex(src);
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(1));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn fused_punctuation() {
        let f = lex("a += b; c::d; e *= f;");
        assert!(f.tokens.iter().any(|t| t.is_punct("+=")));
        assert!(f.tokens.iter().any(|t| t.is_punct("::")));
        assert!(f.tokens.iter().any(|t| t.is_punct("*=")));
    }

    #[test]
    fn numeric_literals() {
        let f = lex("let a = 0x9E37_79B9; let b = 1.5; let c = 42u64; a.min(3)");
        let kinds: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![TokKind::Int, TokKind::Float, TokKind::Int, TokKind::Int]
        );
    }
}
