//! SARIF 2.1.0 output for CI code-scanning upload.
//!
//! Hand-rolled JSON (the workspace is dependency-free by policy): one run,
//! one tool driver whose `rules` array covers the full catalogue — lexical,
//! semantic, and the `unused-allow` pseudo-rule — with each result carrying
//! a `ruleIndex` into it. Paths are emitted as workspace-relative URIs with
//! `uriBaseId: "%SRCROOT%"`, which is what GitHub code scanning expects for
//! a checkout-rooted run.

use crate::rules::{RULES, SEM_RULES};
use crate::{Diagnostic, UNUSED_ALLOW_RULE};
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (without the quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `(id, family label, summary)` for every rule, in stable catalogue order.
fn catalogue() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str, &'static str)> = Vec::new();
    for r in RULES {
        out.push((r.id, r.family.label(), r.summary));
    }
    for r in SEM_RULES {
        out.push((r.id, r.family.label(), r.summary));
    }
    out.push((
        UNUSED_ALLOW_RULE,
        "hygiene",
        "an `allow` comment that suppresses nothing is a stale justification",
    ));
    out
}

/// Render diagnostics as a SARIF 2.1.0 log. `deny` controls the result
/// level (`error` under `--deny-all`, else `warning`).
#[must_use]
pub fn render(diagnostics: &[Diagnostic], deny: bool) -> String {
    let rules = catalogue();
    let level = if deny { "error" } else { "warning" };
    let mut o = String::new();
    o.push_str("{\n  \"version\": \"2.1.0\",\n");
    o.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    o.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    o.push_str("          \"name\": \"tnpu-lint\",\n");
    o.push_str("          \"informationUri\": \"https://example.invalid/tnpu-lint\",\n");
    o.push_str("          \"rules\": [\n");
    for (i, (id, family, summary)) in rules.iter().enumerate() {
        let comma = if i + 1 < rules.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"properties\": {{\"family\": \"{}\"}}}}{}",
            esc(id),
            esc(summary),
            esc(family),
            comma
        );
    }
    o.push_str("          ]\n        }\n      },\n");
    o.push_str("      \"columnKind\": \"utf16CodeUnits\",\n");
    o.push_str("      \"results\": [\n");
    for (i, d) in diagnostics.iter().enumerate() {
        let rule_index = rules
            .iter()
            .position(|(id, _, _)| *id == d.rule)
            .expect("every diagnostic's rule is in the catalogue");
        let comma = if i + 1 < diagnostics.len() { "," } else { "" };
        let _ = writeln!(
            o,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}{}",
            esc(d.rule),
            rule_index,
            level,
            esc(&d.message),
            esc(&d.path),
            d.line.max(1),
            comma
        );
    }
    o.push_str("      ]\n    }\n  ]\n}\n");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/sim/src/x.rs".to_owned(),
                line: 3,
                rule: "wallclock",
                message: "uses \"Instant::now\"\twhich drifts".to_owned(),
            },
            Diagnostic {
                path: "src/lib.rs".to_owned(),
                line: 9,
                rule: "engine-bypass",
                message: "reaches raw DRAM".to_owned(),
            },
        ]
    }

    #[test]
    fn renders_required_sarif_shape() {
        let s = render(&sample(), true);
        for needle in [
            "\"version\": \"2.1.0\"",
            "\"name\": \"tnpu-lint\"",
            "\"ruleId\": \"wallclock\"",
            "\"ruleId\": \"engine-bypass\"",
            "\"level\": \"error\"",
            "\"uri\": \"crates/sim/src/x.rs\"",
            "\"uriBaseId\": \"%SRCROOT%\"",
            "\"startLine\": 3",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
        assert!(render(&sample(), false).contains("\"level\": \"warning\""));
    }

    #[test]
    fn escapes_json_metacharacters() {
        let s = render(&sample(), true);
        assert!(s.contains("uses \\\"Instant::now\\\"\\twhich drifts"));
    }

    #[test]
    fn rule_index_points_at_the_matching_rules_entry() {
        let s = render(&sample(), true);
        // Parse out the rules array order and each result's ruleIndex.
        let ids: Vec<&str> = s
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"id\": \""))
            .map(|l| {
                let rest = &l[l.find("{\"id\": \"").unwrap() + 8..];
                &rest[..rest.find('"').unwrap()]
            })
            .collect();
        for d in sample() {
            let idx = ids
                .iter()
                .position(|id| *id == d.rule)
                .expect("rule listed");
            assert!(s.contains(&format!(
                "\"ruleId\": \"{}\", \"ruleIndex\": {idx},",
                d.rule
            )));
        }
    }

    #[test]
    fn empty_results_is_valid() {
        let s = render(&[], true);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
