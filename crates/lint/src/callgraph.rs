//! Call-graph construction and the three semantic rule families.
//!
//! Built on [`Workspace`]: every function is a node, every call site an
//! edge. Two edge classes matter (see `symbols.rs`): *confident* edges
//! (path-qualified calls that named their target) and *name-matched* edges
//! (`.m()` method calls resolved to every method named `m`). The rules use
//! them asymmetrically:
//!
//! * **engine-bypass** — reverse reachability from the raw-DRAM sinks.
//!   Entry into the sink set requires a *confident* edge: the protection
//!   engines' own `read_block`/`write_block` methods share their names with
//!   `RawDram`'s, so a name-matched `.read_block()` edge must never count
//!   as touching raw DRAM (it would taint every engine caller). Once a
//!   function is tainted, taint propagates through either edge class, but
//!   never *through* a protection-engine method (engines are sanctioned to
//!   reach DRAM). A finding is reported at the call site where a function
//!   outside `crates/memprot` first crosses into the tainted set.
//! * **panic-path** — forward reachability from the public API roots
//!   (`pub` methods of `Session`/`SecureRunner`, `pub` fns in `serving`
//!   modules) over both edge classes (an over-approximation that errs
//!   towards auditing more), flagging every panic-capable site in reached
//!   non-test code.
//! * **error-variant-consumption** — no reachability at all: workspace-wide
//!   evidence that each audited error variant is both constructed
//!   (expression position) and matched (pattern position, outside the
//!   enum's own impl blocks — `Display`/`From` impls don't count as
//!   handling).

use crate::parser::PathRef;
use crate::rules::AUDITED_ERROR_ENUMS;
use crate::symbols::{FnId, Workspace};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One semantic finding, before scope/allow filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemFinding {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-indexed line.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// Message (deterministic: analysis order is sorted and single-pass).
    pub message: String,
}

/// Run all semantic rules over the workspace.
#[must_use]
pub fn analyze(ws: &Workspace) -> Vec<SemFinding> {
    let graph = Graph::build(ws);
    let mut out = engine_bypass(ws, &graph);
    out.extend(panic_path(ws, &graph));
    out.extend(variant_consumption(ws));
    out
}

/// Resolved call edges, computed once per analysis.
struct Graph {
    /// Per caller: `(callee, call-site line, confident)`.
    edges: Vec<Vec<(FnId, u32, bool)>>,
}

impl Graph {
    fn build(ws: &Workspace) -> Self {
        let edges = ws
            .fns
            .iter()
            .map(|f| {
                let mut out = Vec::new();
                for call in &f.item.calls {
                    let (ids, confident) = ws.resolve_call(f, call);
                    for id in ids {
                        out.push((id, call.line, confident));
                    }
                }
                out
            })
            .collect();
        Graph { edges }
    }
}

/// The traits whose implementors are sanctioned to touch raw DRAM.
const ENGINE_TRAITS: &[&str] = &["ProtectionEngine", "FunctionalMemory"];

/// `engine-bypass`: reverse reachability from `functional::dram`.
fn engine_bypass(ws: &Workspace, graph: &Graph) -> Vec<SemFinding> {
    // Types sanctioned to reach raw DRAM: implementors of the protection
    // traits, plus the traits themselves (default method bodies).
    let mut engine_types: BTreeSet<&str> = ENGINE_TRAITS.iter().copied().collect();
    for (ty, traits) in &ws.trait_impls {
        if ENGINE_TRAITS.iter().any(|t| traits.contains(*t)) {
            engine_types.insert(ty);
        }
    }
    let in_memprot = |file: usize| ws.files[file].path.starts_with("crates/memprot");
    let is_sink = |id: FnId| {
        let f = &ws.fns[id];
        in_memprot(f.file)
            && f.fq_module
                .ends_with(&["functional".to_owned(), "dram".to_owned()])
    };
    let is_barrier = |id: FnId| {
        ws.fns[id]
            .item
            .container
            .as_ref()
            .is_some_and(|c| engine_types.contains(c.type_name.as_str()))
    };

    // Fixpoint taint: `next_hop[f]` records the tainting edge.
    let n = ws.fns.len();
    let mut next_hop: Vec<Option<(FnId, u32)>> = vec![None; n];
    loop {
        let mut changed = false;
        for caller in 0..n {
            if next_hop[caller].is_some() || is_barrier(caller) || is_sink(caller) {
                continue;
            }
            for &(callee, line, confident) in &graph.edges[caller] {
                let taints = if is_sink(callee) {
                    // Entry into the sink set needs a confident edge: the
                    // engines' methods share names with RawDram's.
                    confident
                } else {
                    next_hop[callee].is_some() && !is_barrier(callee)
                };
                if taints {
                    next_hop[caller] = Some((callee, line));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Report the crossing points: a tainted fn outside memprot whose
    // tainting callee is the sink itself or lives inside memprot.
    let mut out = Vec::new();
    for caller in 0..n {
        let Some((callee, line)) = next_hop[caller] else {
            continue;
        };
        let f = &ws.fns[caller];
        if in_memprot(f.file) || crate::in_test_dir(&ws.files[f.file].path) {
            continue;
        }
        if ws.files[f.file].in_test_region(f.item.line) {
            continue;
        }
        if !is_sink(callee) && !in_memprot(ws.fns[callee].file) {
            continue; // an outer hop; the crossing fn itself is reported
        }
        // Witness chain down to the sink.
        let mut chain = vec![f.display()];
        let mut cur = callee;
        loop {
            chain.push(ws.fns[cur].display());
            match next_hop[cur] {
                Some((next, _)) if !is_sink(cur) => cur = next,
                _ => break,
            }
        }
        out.push(SemFinding {
            file: f.file,
            line,
            rule: "engine-bypass",
            message: format!(
                "call chain reaches raw DRAM without traversing a protection engine: \
                 `{}`; route the access through a ProtectionEngine/FunctionalMemory \
                 method, or keep physical-attack modelling inside #[cfg(test)]",
                chain.join("` -> `")
            ),
        });
    }
    out
}

/// Types whose `pub` methods form the session-facing API surface.
const API_TYPES: &[&str] = &["Session", "SecureRunner"];

/// `panic-path`: forward reachability from the public API surface.
fn panic_path(ws: &Workspace, graph: &Graph) -> Vec<SemFinding> {
    let mut roots: Vec<FnId> = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !f.item.is_pub
            || crate::in_test_dir(&ws.files[f.file].path)
            || ws.files[f.file].in_test_region(f.item.line)
        {
            continue;
        }
        let api_type = f
            .item
            .container
            .as_ref()
            .is_some_and(|c| API_TYPES.contains(&c.type_name.as_str()));
        let serving = f.fq_module.iter().any(|m| m == "serving");
        if api_type || serving {
            roots.push(id);
        }
    }
    roots.sort_unstable();

    // BFS with predecessor links for witness chains.
    let mut pred: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &r in &roots {
        if let Entry::Vacant(slot) = pred.entry(r) {
            slot.insert(None);
            queue.push_back(r);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &(callee, _, _) in &graph.edges[cur] {
            if let Entry::Vacant(slot) = pred.entry(callee) {
                slot.insert(Some(cur));
                queue.push_back(callee);
            }
        }
    }

    let mut out = Vec::new();
    for &id in pred.keys() {
        let f = &ws.fns[id];
        if crate::in_test_dir(&ws.files[f.file].path) {
            continue;
        }
        if f.item.panics.is_empty() {
            continue;
        }
        // Witness chain from the root down to this fn.
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(ws.fns[c].display());
            cur = pred.get(&c).copied().flatten();
        }
        chain.reverse();
        let shown = if chain.len() > 4 {
            format!(
                "`{}` -> `{}` -> ... -> `{}`",
                chain[0],
                chain[1],
                chain[chain.len() - 1]
            )
        } else {
            format!("`{}`", chain.join("` -> `"))
        };
        for p in &f.item.panics {
            if ws.files[f.file].in_test_region(p.line) {
                continue;
            }
            out.push(SemFinding {
                file: f.file,
                line: p.line,
                rule: "panic-path",
                message: format!(
                    "{} is reachable from the public API ({shown}); return a typed \
                     error instead, or justify the invariant with an allow comment",
                    p.kind.label()
                ),
            });
        }
    }
    out
}

/// `error-variant-consumption`: every audited variant must be constructed
/// and matched in non-test code.
fn variant_consumption(ws: &Workspace) -> Vec<SemFinding> {
    let mut constructed: BTreeSet<(String, String)> = BTreeSet::new();
    let mut consumed: BTreeSet<(String, String)> = BTreeSet::new();

    let record = |file: usize, r: &PathRef, set: &mut BTreeSet<(String, String)>| {
        if crate::in_test_dir(&ws.files[file].path) || ws.files[file].in_test_region(r.line) {
            return;
        }
        if let Some((enum_name, variant)) = ws.resolve_variant_ref(file, r) {
            set.insert((enum_name, variant));
        }
    };

    for (fi, entry) in ws.files.iter().enumerate() {
        for r in &entry.parsed.expr_refs {
            record(fi, r, &mut constructed);
        }
        for r in &entry.parsed.pattern_refs {
            // An enum's own impl blocks (Display, From) match every
            // variant by construction; handling means a consumer outside
            // the enum itself.
            if r.container.is_some()
                && ws
                    .resolve_variant_ref(fi, r)
                    .is_some_and(|(e, _)| r.container.as_deref() == Some(e.as_str()))
            {
                continue;
            }
            record(fi, r, &mut consumed);
        }
    }
    // Tuple/struct-variant constructions surface as path calls.
    for f in &ws.fns {
        for call in &f.item.calls {
            if call.method || call.path.len() < 2 {
                continue;
            }
            let r = PathRef {
                line: call.line,
                path: call.path.clone(),
                module: f.item.module.clone(),
                container: f.item.container.as_ref().map(|c| c.type_name.clone()),
            };
            record(f.file, &r, &mut constructed);
        }
    }

    let mut out = Vec::new();
    for def in &ws.enums {
        if !AUDITED_ERROR_ENUMS.contains(&def.item.name.as_str()) {
            continue;
        }
        if crate::in_test_dir(&ws.files[def.file].path) {
            continue;
        }
        for (variant, line) in &def.item.variants {
            let key = (def.item.name.clone(), variant.clone());
            if !constructed.contains(&key) {
                out.push(SemFinding {
                    file: def.file,
                    line: *line,
                    rule: "error-variant-consumption",
                    message: format!(
                        "variant `{}::{variant}` is never constructed in non-test code; \
                         remove it or wire it into the error path",
                        def.item.name
                    ),
                });
            } else if !consumed.contains(&key) {
                out.push(SemFinding {
                    file: def.file,
                    line: *line,
                    rule: "error-variant-consumption",
                    message: format!(
                        "variant `{}::{variant}` is constructed but never matched/handled \
                         in non-test code outside its own impls; add a consumer (match arm, \
                         `if let`, or `matches!`) or remove the construction",
                        def.item.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::symbols::FileEntry;

    fn entry(path: &str, src: &str) -> FileEntry {
        let lexed = lex(src);
        FileEntry {
            path: path.to_owned(),
            parsed: parse(&lexed),
            test_regions: lexed.test_regions,
        }
    }

    const DRAM: &str = "pub struct RawDram;\nimpl RawDram {\n  pub fn new() -> Self { RawDram }\n  pub fn write_block(&mut self, a: u64) {}\n  pub fn read_block(&self, a: u64) {}\n}\n";

    const ENGINE: &str = "use crate::functional::dram::RawDram;\npub struct TreelessMemory { d: RawDram }\nimpl FunctionalMemory for TreelessMemory {\n  fn read_block(&mut self, a: u64) { self.d.read_block(a); verify(a); }\n}\nimpl TreelessMemory {\n  pub fn new() -> Self { TreelessMemory { d: RawDram::new() } }\n}\nfn verify(a: u64) {}\n";

    fn memprot_files() -> Vec<FileEntry> {
        vec![
            entry("crates/memprot/src/functional/dram.rs", DRAM),
            entry("crates/memprot/src/functional/mod.rs", ENGINE),
        ]
    }

    fn findings_for(rule: &str, files: Vec<FileEntry>) -> Vec<(String, u32, String)> {
        let ws = Workspace::build(files);
        analyze(&ws)
            .into_iter()
            .filter(|f| f.rule == rule)
            .map(|f| (ws.files[f.file].path.clone(), f.line, f.message))
            .collect()
    }

    #[test]
    fn bypass_through_a_helper_chain_is_caught() {
        // The lexical dram-bypass rule sees no `RawDram` token in bad.rs's
        // entry fn — the access is laundered through two helpers. The
        // reachability rule still catches it.
        let mut files = memprot_files();
        files.push(entry(
            "crates/sim/src/bad.rs",
            "use tnpu_memprot::functional::dram::RawDram;\npub fn attack_entry() { helper_one(); }\nfn helper_one() { helper_two(); }\nfn helper_two() { let mut d = RawDram::new(); d.write_block(0); }\n",
        ));
        let found = findings_for("engine-bypass", files);
        assert_eq!(found.len(), 1, "one crossing point: {found:?}");
        let (path, line, msg) = &found[0];
        assert_eq!(path, "crates/sim/src/bad.rs");
        assert_eq!(*line, 4, "reported at the crossing call site");
        assert!(msg.contains("helper_two"), "witness chain: {msg}");
        assert!(msg.contains("RawDram::new"), "witness chain: {msg}");
    }

    #[test]
    fn engine_users_are_not_tainted_by_method_name_collisions() {
        // `.read_block()` on a TreelessMemory shares its name with
        // RawDram::read_block; the name-matched edge must not taint.
        let mut files = memprot_files();
        files.push(entry(
            "crates/sim/src/good.rs",
            "use tnpu_memprot::functional::TreelessMemory;\npub fn run() { let mut m = TreelessMemory::new(); m.read_block(0); }\n",
        ));
        let found = findings_for("engine-bypass", files);
        assert!(found.is_empty(), "engines are barriers: {found:?}");
    }

    #[test]
    fn memprot_internals_may_touch_dram() {
        let found = findings_for("engine-bypass", memprot_files());
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn panic_behind_two_calls_is_reachable() {
        let files = vec![entry(
            "crates/core/src/session.rs",
            "pub struct Session;\nimpl Session {\n  pub fn attest(&self) { step_one(); }\n}\nfn step_one() { step_two(); }\nfn step_two(m: &M) { m.state.unwrap(); }\n",
        )];
        let found = findings_for("panic-path", files);
        assert_eq!(found.len(), 1, "{found:?}");
        let (_, line, msg) = &found[0];
        assert_eq!(*line, 6);
        assert!(msg.contains("Session::attest"), "root in chain: {msg}");
        assert!(msg.contains("unwrap"), "{msg}");
    }

    #[test]
    fn unreachable_and_nonpub_panics_are_quiet() {
        let files = vec![entry(
            "crates/core/src/session.rs",
            "pub struct Session;\nimpl Session {\n  fn private_helper(&self) { never_called_from_api(); }\n  pub fn ok(&self) -> u32 { 1 }\n}\nfn never_called_from_api() { panic!(\"x\"); }\nfn orphan() { data[0]; }\n",
        )];
        let found = findings_for("panic-path", files);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn serving_fns_are_roots() {
        let files = vec![entry(
            "crates/bench/src/serving.rs",
            "pub fn dispatch(q: &Q) { q.slots.unwrap(); }\nfn internal() {}\n",
        )];
        let found = findings_for("panic-path", files);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn constructed_but_unmatched_variant_is_flagged() {
        let files = vec![
            entry(
                "crates/core/src/version.rs",
                "pub enum VersionError {\n  Exhausted(u32),\n  Stale(u64),\n}\nimpl std::fmt::Display for VersionError {\n  fn fmt(&self, f: &mut F) -> R { match self { VersionError::Exhausted(t) => w(f), VersionError::Stale(s) => w(f) } }\n}\npub fn bump() -> Result<(), VersionError> { Err(VersionError::Exhausted(3)) }\npub fn stale() -> VersionError { VersionError::Stale(0) }\n",
            ),
            entry(
                "crates/sim/src/recover.rs",
                "pub fn recover(e: VersionError) {\n  if let VersionError::Stale(s) = e { retry(s); }\n}\n",
            ),
        ];
        let found = findings_for("error-variant-consumption", files);
        assert_eq!(found.len(), 1, "{found:?}");
        let (path, line, msg) = &found[0];
        assert_eq!(path, "crates/core/src/version.rs");
        assert_eq!(*line, 2);
        assert!(
            msg.contains("Exhausted") && msg.contains("never matched"),
            "Display impl must not count as handling: {msg}"
        );
    }

    #[test]
    fn never_constructed_variant_is_flagged() {
        let files = vec![entry(
            "crates/core/src/run.rs",
            "pub enum RunError { Finished, Poisoned }\npub fn f() -> RunError { RunError::Poisoned }\npub fn g(e: &RunError) -> bool { matches!(e, RunError::Poisoned | RunError::Finished) }\n",
        )];
        let found = findings_for("error-variant-consumption", files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].2.contains("Finished") && found[0].2.contains("never constructed"));
    }

    #[test]
    fn fully_consumed_enums_are_quiet() {
        let files = vec![entry(
            "crates/core/src/run.rs",
            "pub enum RunError { Finished, Poisoned }\npub fn f(stop: bool) -> RunError { if stop { RunError::Finished } else { RunError::Poisoned } }\npub fn g(e: &RunError) -> u32 { match e { RunError::Finished => 0, RunError::Poisoned => 1 } }\n",
        )];
        let found = findings_for("error-variant-consumption", files);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn test_code_evidence_does_not_count() {
        let files = vec![entry(
            "crates/core/src/run.rs",
            "pub enum RunError { Finished }\npub fn f() -> RunError { RunError::Finished }\n#[cfg(test)]\nmod tests {\n  fn t(e: RunError) { match e { RunError::Finished => {} } }\n}\n",
        )];
        let found = findings_for("error-variant-consumption", files);
        assert_eq!(
            found.len(),
            1,
            "cfg(test) match is not a consumer: {found:?}"
        );
    }
}
