//! Engine consistency properties: for every scheme and any access stream,
//! the per-access [`AccessCost`] sums must equal the engine's accumulated
//! [`TrafficStats`] — the invariant that keeps the DMA's bandwidth
//! accounting and the reported figures in agreement.

use proptest::prelude::*;
use tnpu_memprot::engine::AccessCost;
use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::Addr;

fn streams() -> impl Strategy<Value = (u64, Vec<(u64, bool)>)> {
    (
        any::<u64>(),
        prop::collection::vec((0u64..(1 << 20), any::<bool>()), 1..300),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// AccessCost.meta_bytes sums to the engine's total metadata traffic
    /// for every scheme, for arbitrary block streams.
    #[test]
    fn cost_matches_traffic((_, accesses) in streams()) {
        for scheme in SchemeKind::ALL {
            let mut engine = build_engine(scheme, &ProtectionConfig::paper_default());
            let mut summed = AccessCost::FREE;
            for &(block, write) in &accesses {
                let addr = Addr(block * 64);
                let cost = if write {
                    engine.write_block(addr, 1)
                } else {
                    engine.read_block(addr, 1)
                };
                summed.merge(cost);
            }
            let stats = engine.stats();
            prop_assert_eq!(
                summed.meta_bytes,
                stats.traffic.total(),
                "{}: cost sum vs traffic stats",
                scheme
            );
        }
    }

    /// Stats reset really zeroes the counters while cache contents persist
    /// (warm caches make the next access cheaper, not costlier).
    #[test]
    fn reset_keeps_warm_state(block in 0u64..(1 << 18)) {
        let mut engine = build_engine(SchemeKind::TreeBased, &ProtectionConfig::paper_default());
        let addr = Addr(block * 64);
        let cold = engine.read_block(addr, 1);
        engine.reset_stats();
        prop_assert_eq!(engine.stats().traffic.total(), 0);
        let warm = engine.read_block(addr, 1);
        prop_assert!(warm.meta_bytes <= cold.meta_bytes);
        prop_assert_eq!(warm, AccessCost::FREE);
    }
}

/// A mixed random stream through the tree engine keeps the counter-cache
/// accounting sane: accesses equal block accesses, and write-backs never
/// exceed misses.
#[test]
fn tree_engine_cache_accounting() {
    let mut engine = build_engine(SchemeKind::TreeBased, &ProtectionConfig::paper_default());
    let mut rng = SplitMix64::new(99);
    let n = 20_000u64;
    for _ in 0..n {
        let addr = Addr(rng.next_below(1 << 22) * 64);
        if rng.next_below(2) == 0 {
            engine.read_block(addr, 1);
        } else {
            engine.write_block(addr, 1);
        }
    }
    let s = engine.stats();
    assert_eq!(s.counter_cache.accesses(), n);
    assert_eq!(s.mac_cache.accesses(), n);
    assert!(s.counter_cache.writebacks <= s.counter_cache.misses);
    assert!(s.hash_cache.writebacks <= s.hash_cache.misses);
}

/// The treeless engine never touches counter or hash structures.
#[test]
fn treeless_never_uses_counters() {
    let mut engine = build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default());
    let mut rng = SplitMix64::new(5);
    for _ in 0..5_000 {
        engine.read_block(Addr(rng.next_below(1 << 22) * 64), 1);
        engine.write_block(Addr(rng.next_below(1 << 22) * 64), 2);
    }
    let s = engine.stats();
    assert_eq!(s.traffic.counter, 0);
    assert_eq!(s.traffic.tree, 0);
    assert_eq!(
        s.counter_cache.accesses(),
        0,
        "no version accesses -> no inner activity"
    );
}
