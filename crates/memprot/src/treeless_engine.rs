//! The TNPU engine: AES-XTS encryption + per-block versioned MACs, with the
//! software version table living in a small tree-protected fully-protected
//! region (§IV-C).
//!
//! Compared with the baseline there are **no per-block counters and no
//! whole-memory integrity tree**: replay protection comes from the version
//! number the CPU-side software passes with each `mvin`/`mvout`, so the
//! only per-block metadata traffic is the MAC (filtered by the shared 8 KB
//! MAC cache). The version numbers themselves are stored in the 128 MB
//! fully-protected region, which is still protected by a conventional
//! counter tree — the engine embeds a [`TreeBasedEngine`] scoped to that
//! region and routes version-table accesses through it, so their (small)
//! cost is modelled rather than ignored.

use crate::config::ProtectionConfig;
use crate::engine::{AccessCost, EngineStats, ProtectionEngine};
use crate::layout::{Layout, MACS_PER_BLOCK};
use crate::span::meta_spans;
use crate::tree_engine::TreeBasedEngine;
use crate::SchemeKind;
use tnpu_sim::cache::{AccessKind, Cache};
use tnpu_sim::stats::{EventCounters, TrafficStats};
use tnpu_sim::{Addr, BlockAddr, BlockRun, Cycles, BLOCK_SIZE};

/// AES-XTS + versioned-MAC engine (the paper's *TNPU*).
#[derive(Debug)]
pub struct TreelessEngine {
    config: ProtectionConfig,
    layout: Layout,
    mac_cache: Cache,
    /// Protection engine for the fully-protected region (version table).
    inner: TreeBasedEngine,
    /// CPU-cache residency model for the version table: the table lives in
    /// ordinary cacheable EPC memory and is only a few KB (§IV-D), so the
    /// CPU-side software's lookups rarely reach DRAM. Only misses generate
    /// requests to the fully-protected region.
    version_cache: Cache,
    traffic: TrafficStats,
    events: EventCounters,
}

impl TreelessEngine {
    /// Build the engine. The MAC cache covers the whole DRAM; the embedded
    /// tree engine covers only `config.fully_protected_size` bytes.
    #[must_use]
    pub fn new(config: ProtectionConfig) -> Self {
        let layout = Layout::new(config.dram_size, config.counters_per_block);
        let mut inner_config = config.clone();
        inner_config.dram_size = config.fully_protected_size;
        TreelessEngine {
            mac_cache: Cache::new(config.mac_cache.clone()),
            inner: TreeBasedEngine::new(inner_config),
            version_cache: Cache::new(tnpu_sim::cache::CacheConfig::new("version", 8 << 10, 8, 64)),
            layout,
            config,
            traffic: TrafficStats::default(),
            events: EventCounters::default(),
        }
    }

    fn clamp_block(&self, addr: Addr) -> BlockAddr {
        let block = addr.block();
        // A hard assert, not debug_assert: in release builds an
        // out-of-range address would otherwise silently alias (modulo)
        // into the protected region and charge the wrong metadata blocks.
        assert!(
            self.layout.contains_block(block),
            "access at {addr} outside protected region"
        );
        BlockAddr(block.0 % self.layout.data_blocks())
    }

    fn mac_access(&mut self, block: BlockAddr, kind: AccessKind, cost: &mut AccessCost) {
        let outcome = self.mac_cache.access(self.layout.mac_addr(block), kind);
        if outcome.is_miss() && kind == AccessKind::Read {
            // Read misses fetch the MAC block to verify. Write misses are
            // write-combined (streaming stores fill whole MAC blocks), so
            // only the eventual write-back moves data.
            self.traffic.mac += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
            cost.independent_misses += 1;
        }
        if outcome.writeback().is_some() {
            self.traffic.mac += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
        }
    }

    /// Bounds-check a whole run, panicking exactly as the per-block path
    /// would at its first out-of-range block.
    fn check_run(&self, run: BlockRun) {
        let blocks = self.layout.data_blocks();
        if run.last().0 < blocks {
            return;
        }
        let bad = if run.first.0 >= blocks {
            run.first
        } else {
            BlockAddr(blocks)
        };
        panic!("access at {} outside protected region", bad.base());
    }

    /// Run-batched MAC path: one MAC-cache access per covered MAC block
    /// (plus `covered - 1` bookkeeping hits); effect logic mirrors
    /// [`Self::mac_access`], which stays the single-block entry point.
    /// Later accesses of a span are guaranteed hits, so only the first
    /// access of each span has side effects to replicate.
    fn mac_run(&mut self, run: BlockRun, kind: AccessKind, cost: &mut AccessCost) {
        let first_index = run.first.0 / MACS_PER_BLOCK;
        let lines = run.last().0 / MACS_PER_BLOCK - first_index + 1;
        if lines == run.len {
            // Every covered MAC line is touched exactly once (gather-style
            // short runs): one consecutive-line batched sweep.
            let traffic = &mut self.traffic;
            self.mac_cache.access_many(
                self.layout.mac_index_addr(first_index),
                lines,
                kind,
                |outcome| {
                    if outcome.is_miss() && kind == AccessKind::Read {
                        traffic.mac += BLOCK_SIZE as u64;
                        cost.meta_bytes += BLOCK_SIZE as u64;
                        cost.independent_misses += 1;
                    }
                    if outcome.writeback().is_some() {
                        traffic.mac += BLOCK_SIZE as u64;
                        cost.meta_bytes += BLOCK_SIZE as u64;
                    }
                },
            );
            return;
        }
        for span in meta_spans(run.first.0, run.len, MACS_PER_BLOCK) {
            let outcome = self.mac_cache.access_repeated(
                self.layout.mac_index_addr(span.index),
                kind,
                span.covered,
            );
            if outcome.is_miss() && kind == AccessKind::Read {
                self.traffic.mac += BLOCK_SIZE as u64;
                cost.meta_bytes += BLOCK_SIZE as u64;
                cost.independent_misses += 1;
            }
            if outcome.writeback().is_some() {
                self.traffic.mac += BLOCK_SIZE as u64;
                cost.meta_bytes += BLOCK_SIZE as u64;
            }
        }
    }
}

impl ProtectionEngine for TreelessEngine {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::Treeless
    }

    fn read_block(&mut self, addr: Addr, _version: u64) -> AccessCost {
        let block = self.clamp_block(addr);
        let mut cost = AccessCost::FREE;
        // XTS needs no counter: the tweak derives from the address. Only
        // the MAC must be fetched for verification.
        self.mac_access(block, AccessKind::Read, &mut cost);
        cost
    }

    fn write_block(&mut self, addr: Addr, _version: u64) -> AccessCost {
        let block = self.clamp_block(addr);
        let mut cost = AccessCost::FREE;
        self.mac_access(block, AccessKind::Write, &mut cost);
        cost
    }

    fn read_run(&mut self, run: BlockRun, _version: u64) -> AccessCost {
        if run.len == 0 {
            return AccessCost::FREE;
        }
        self.check_run(run);
        let mut cost = AccessCost::FREE;
        self.mac_run(run, AccessKind::Read, &mut cost);
        cost
    }

    fn write_run(&mut self, run: BlockRun, _version: u64) -> AccessCost {
        if run.len == 0 {
            return AccessCost::FREE;
        }
        self.check_run(run);
        let mut cost = AccessCost::FREE;
        self.mac_run(run, AccessKind::Write, &mut cost);
        cost
    }

    fn version_access(&mut self, table_addr: Addr, write: bool) -> AccessCost {
        self.events.add("version_access", 1);
        let wrapped = Addr(table_addr.0 % self.config.fully_protected_size);
        // The table is ordinary cacheable enclave memory and only a few KB
        // (avg 1.3 KB, max 7.5 KB, §IV-D): lookups that hit in the CPU
        // cache are free. Misses reach the fully-protected region through
        // the conventional (small) tree-based engine.
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let outcome = self.version_cache.access(wrapped, kind);
        let mut cost = AccessCost::FREE;
        if let Some(victim) = outcome.writeback() {
            cost.merge(self.inner.write_block(victim, 0));
            self.traffic.version += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
        }
        if outcome.is_miss() {
            self.events.add("version_miss", 1);
            cost.merge(self.inner.read_block(wrapped, 0));
            self.traffic.version += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
        }
        cost
    }

    fn pipeline_latency(&self) -> Cycles {
        self.config.xts_latency
    }

    fn context_state_bytes(&self) -> u64 {
        // Per-context engine state the switch moves through the fully
        // protected region: the tree-less region's XTS key pair (32 B),
        // the MAC key (16 B), and the NELRANGE base/bound registers (16 B).
        64
    }

    fn stats(&self) -> EngineStats {
        let inner = self.inner.stats();
        let mut traffic = self.traffic;
        traffic.merge(&inner.traffic);
        let mut events = self.events.clone();
        events.merge(&inner.events);
        let mut mac_cache = self.mac_cache.stats();
        mac_cache.merge(&inner.mac_cache);
        EngineStats {
            traffic,
            counter_cache: inner.counter_cache,
            hash_cache: inner.hash_cache,
            mac_cache,
            events,
        }
    }

    fn reset_stats(&mut self) {
        self.traffic = TrafficStats::default();
        self.events = EventCounters::default();
        self.mac_cache.reset_stats();
        // The version cache was missing here, so its hit/miss counters
        // leaked across resets (caught by the flush round-trip proptest).
        self.version_cache.reset_stats();
        self.inner.reset_stats();
    }

    fn flush(&mut self) -> AccessCost {
        let mut cost = AccessCost::FREE;
        let mac_bytes = self.mac_cache.flush().len() as u64 * BLOCK_SIZE as u64;
        self.traffic.mac += mac_bytes;
        cost.meta_bytes += mac_bytes;
        cost.independent_misses += mac_bytes / BLOCK_SIZE as u64;
        // Dirty version-table lines drain into the fully-protected region.
        let version_bytes = self.version_cache.flush().len() as u64 * BLOCK_SIZE as u64;
        self.traffic.version += version_bytes;
        cost.meta_bytes += version_bytes;
        cost.independent_misses += version_bytes / BLOCK_SIZE as u64;
        cost.merge(self.inner.flush());
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TreelessEngine {
        TreelessEngine::new(ProtectionConfig::paper_default())
    }

    #[test]
    fn reads_cost_only_mac_traffic() {
        let mut e = engine();
        let cost = e.read_block(Addr(0), 1);
        assert_eq!(cost.meta_bytes, 64);
        assert_eq!(cost.independent_misses, 1);
        assert_eq!(cost.serial_misses, 0, "no tree walk in TNPU");
        let s = e.stats();
        assert_eq!(s.traffic.counter, 0);
        assert_eq!(s.traffic.tree, 0);
        assert_eq!(s.traffic.mac, 64);
    }

    #[test]
    fn mac_spatial_locality() {
        let mut e = engine();
        e.read_block(Addr(0), 1);
        for i in 1..8u64 {
            assert_eq!(e.read_block(Addr(i * 64), 1), AccessCost::FREE);
        }
        assert!(e.read_block(Addr(8 * 64), 1).meta_bytes > 0);
    }

    #[test]
    fn streaming_overhead_is_one_eighth() {
        let mut e = engine();
        let n = 4096u64;
        let mut meta = 0u64;
        for i in 0..n {
            meta += e.read_block(Addr(i * 64), 1).meta_bytes;
        }
        let ratio = meta as f64 / (n * 64) as f64;
        assert!((ratio - 0.125).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn version_access_goes_through_inner_tree_on_miss() {
        let mut e = engine();
        let cost = e.version_access(Addr(0x1000), false);
        // Cold: version-cache miss, inner counter + tree + mac misses.
        assert!(cost.meta_bytes >= 64);
        let s = e.stats();
        assert_eq!(s.events.get("version_access"), 1);
        assert_eq!(s.events.get("version_miss"), 1);
        assert!(s.traffic.version > 0);
        // Warm second access to the same entry hits the CPU cache: free.
        let cost2 = e.version_access(Addr(0x1000), false);
        assert_eq!(cost2, AccessCost::FREE);
    }

    #[test]
    fn version_table_has_high_locality() {
        let mut e = engine();
        // A realistic model's version table is a few KB: after the first
        // round everything hits the CPU cache.
        for round in 0..10u64 {
            for entry in 0..16u64 {
                e.version_access(Addr(entry * 8), round % 2 == 0);
            }
        }
        let s = e.stats();
        assert_eq!(s.events.get("version_access"), 160);
        assert_eq!(s.events.get("version_miss"), 2, "two cold lines only");
    }

    #[test]
    fn pipeline_latency_is_xts() {
        assert_eq!(engine().pipeline_latency(), Cycles(13));
    }

    #[test]
    fn writes_and_reads_share_mac_cache() {
        let mut e = engine();
        e.write_block(Addr(0), 1);
        assert_eq!(e.read_block(Addr(64), 1), AccessCost::FREE);
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut e = engine();
        e.read_block(Addr(0), 1);
        e.flush();
        e.reset_stats();
        assert_eq!(e.stats().traffic.total(), 0);
        assert!(e.read_block(Addr(0), 1).meta_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "outside protected region")]
    fn out_of_range_access_panics_instead_of_aliasing() {
        // Regression test: the bound check was debug_assert!-only, so a
        // release build silently wrapped out-of-range addresses modulo
        // data_blocks() back into the protected region.
        let mut e = engine();
        e.read_block(Addr(4 << 30), 1);
    }

    #[test]
    fn flush_accounts_dirty_mac_writebacks() {
        // Regression test: streaming writes leave dirty MAC lines; a flush
        // must report their write-back instead of dropping them.
        let mut e = engine();
        for i in 0..64 {
            e.write_block(Addr(i * 64), 1);
        }
        let before = e.stats().traffic.mac;
        let cost = e.flush();
        assert!(cost.meta_bytes > 0, "dirty MAC lines must be written back");
        assert!(e.stats().traffic.mac > before);
        assert_eq!(e.flush(), AccessCost::FREE, "second flush is clean");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// After any access sequence, `flush` + `reset_stats` round-trips
        /// the engine to a state byte-identical to a freshly built one
        /// (compared through the exhaustive `Debug` rendering): no cache
        /// line, LRU stamp, write count, traffic byte or event survives,
        /// so a reused engine can never leak warm state into the next
        /// measurement.
        #[test]
        fn flush_and_reset_roundtrip_to_fresh(
            ops in prop::collection::vec((0u8..3, 0u64..4096), 1..48),
        ) {
            let mut e = TreelessEngine::new(ProtectionConfig::paper_default());
            for (op, a) in ops {
                match op {
                    0 => {
                        e.read_block(Addr(a * 64), 1);
                    }
                    1 => {
                        e.write_block(Addr(a * 64), 1);
                    }
                    _ => {
                        e.version_access(Addr(a), a % 2 == 0);
                    }
                }
            }
            e.flush();
            e.reset_stats();
            let fresh = TreelessEngine::new(ProtectionConfig::paper_default());
            prop_assert_eq!(format!("{e:?}"), format!("{fresh:?}"));
        }
    }
}
