//! Encryption-only ablation: AES-XTS with no integrity protection.
//!
//! This corresponds to *scalable SGX* in the paper's background (§II-B):
//! total-memory encryption without MACs or a tree, providing confidentiality
//! but no integrity/replay protection against physical attacks. It bounds
//! the cost of TNPU's integrity support (the gap between this engine and
//! [`crate::treeless_engine::TreelessEngine`] is exactly the MAC overhead).

use crate::config::ProtectionConfig;
use crate::engine::{AccessCost, EngineStats, ProtectionEngine};
use crate::SchemeKind;
use tnpu_sim::{Addr, Cycles};

/// AES-XTS-only engine (no MACs, no tree, no metadata traffic).
#[derive(Debug)]
pub struct EncryptOnlyEngine {
    config: ProtectionConfig,
    stats: EngineStats,
}

impl EncryptOnlyEngine {
    /// Build the engine.
    #[must_use]
    pub fn new(config: ProtectionConfig) -> Self {
        EncryptOnlyEngine {
            config,
            stats: EngineStats::default(),
        }
    }
}

impl ProtectionEngine for EncryptOnlyEngine {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::EncryptOnly
    }

    fn read_block(&mut self, _addr: Addr, _version: u64) -> AccessCost {
        AccessCost::FREE
    }

    fn write_block(&mut self, _addr: Addr, _version: u64) -> AccessCost {
        AccessCost::FREE
    }

    fn pipeline_latency(&self) -> Cycles {
        self.config.xts_latency
    }

    fn context_state_bytes(&self) -> u64 {
        // Per-context engine state: the XTS key pair alone (no MACs, no
        // versions, nothing else to save).
        32
    }

    fn stats(&self) -> EngineStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn flush(&mut self) -> AccessCost {
        AccessCost::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_metadata_cost_but_xts_latency() {
        let mut e = EncryptOnlyEngine::new(ProtectionConfig::paper_default());
        assert_eq!(e.read_block(Addr(0), 0), AccessCost::FREE);
        assert_eq!(e.write_block(Addr(0), 0), AccessCost::FREE);
        assert_eq!(e.pipeline_latency(), Cycles(13));
        assert_eq!(e.stats().traffic.total(), 0);
    }
}
