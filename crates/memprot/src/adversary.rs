//! Deterministic attack strategies against the functional memories.
//!
//! Each [`Adversary`] models one physical-attacker capability from the
//! paper's threat model (§III): corrupting bits on the memory bus,
//! relocating ciphertext, replaying previously captured state, rolling
//! back DRAM-resident metadata, substituting MACs, and splicing state
//! captured from a *different* protection context (different keys). The
//! strategies work purely through the [`FunctionalMemory`] attack surface
//! — exactly what an attacker with DRAM access but no on-chip access has.
//!
//! An attack runs in two phases: [`Adversary::observe`] photographs the
//! victim's state at a chosen moment (only the replay-family attacks use
//! it), and [`Adversary::inject`] mutates the untrusted store at the
//! injection point. All randomness (which bits to flip, foreign plaintext)
//! comes from the caller-supplied [`SplitMix64`], so a seeded harness is
//! byte-reproducible.

use crate::functional::{BlockCapture, FunctionalMemory};
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// The attack taxonomy of the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackKind {
    /// Flip one bit of the stored block.
    BitFlip,
    /// Flip several distinct bits of the stored block.
    MultiBitFlip,
    /// Copy another protected block's stored state over the victim.
    BlockSplice,
    /// Re-supply previously captured state for the same address after the
    /// victim has moved on (version bumped / counters advanced).
    Replay,
    /// Roll back the DRAM-resident metadata (MAC, counters) to a captured
    /// state while the data stays current.
    VersionRollback,
    /// Replace the victim's MAC with another block's MAC.
    MacSubstitution,
    /// Install state captured from a different protection context
    /// (different keys) at the same address.
    CrossContextSplice,
}

impl AttackKind {
    /// Every attack, in presentation order.
    pub const ALL: [AttackKind; 7] = [
        AttackKind::BitFlip,
        AttackKind::MultiBitFlip,
        AttackKind::BlockSplice,
        AttackKind::Replay,
        AttackKind::VersionRollback,
        AttackKind::MacSubstitution,
        AttackKind::CrossContextSplice,
    ];

    /// Stable label used in tables and seed derivation.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::BitFlip => "bit-flip",
            AttackKind::MultiBitFlip => "multi-bit-flip",
            AttackKind::BlockSplice => "block-splice",
            AttackKind::Replay => "replay",
            AttackKind::VersionRollback => "version-rollback",
            AttackKind::MacSubstitution => "mac-substitution",
            AttackKind::CrossContextSplice => "cross-context-splice",
        }
    }

    /// Whether the strategy needs an [`Adversary::observe`] pass (the
    /// replay family re-supplies previously captured state; the victim
    /// must be rewritten between capture and injection).
    #[must_use]
    pub fn needs_capture(self) -> bool {
        matches!(self, AttackKind::Replay | AttackKind::VersionRollback)
    }
}

impl std::fmt::Display for AttackKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where and with what an injection happens. The harness picks all fields
/// deterministically (seeded from model/scheme/attack labels).
pub struct AttackPoint<'a> {
    /// Block the attack lands on.
    pub victim: Addr,
    /// A different written block in the same memory (splice/MAC donors).
    pub donor: Addr,
    /// The version the victim is expected to carry at its next read —
    /// what a cross-context forger would supply.
    pub version: u64,
    /// How many leading bytes of the victim block the consumer actually
    /// reads. Bit-flip strategies stay inside this window: AES-XTS garbles
    /// only the 16 B sub-block containing a flipped ciphertext bit, so a
    /// flip in the padding tail of a partially-used block would be
    /// invisible to a consumer that truncates — an ineffective injection,
    /// not a scheme property.
    pub live_bytes: usize,
    /// A memory of the same scheme under *different keys*, for
    /// [`AttackKind::CrossContextSplice`].
    pub foreign: Option<&'a mut dyn FunctionalMemory>,
    /// Seeded randomness for the strategy's choices.
    pub rng: &'a mut SplitMix64,
}

/// One attack strategy: optionally observe the victim, then inject.
pub trait Adversary {
    /// Which attack this strategy implements.
    fn kind(&self) -> AttackKind;

    /// Photograph whatever the strategy needs from the untrusted store.
    /// Called at the capture moment (end of the clean reference pass).
    fn observe(&mut self, mem: &dyn FunctionalMemory, victim: Addr);

    /// Mutate the untrusted store at the injection point. Returns `false`
    /// when the scheme offers no such surface (the harness records the
    /// cell as not-applicable).
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool;
}

/// The bit-flip window of a point, clamped to the block.
fn live_bytes(point: &AttackPoint<'_>) -> usize {
    point.live_bytes.clamp(1, BLOCK_SIZE)
}

/// Build the strategy for `kind`.
#[must_use]
pub fn adversary(kind: AttackKind) -> Box<dyn Adversary> {
    match kind {
        AttackKind::BitFlip => Box::new(BitFlip),
        AttackKind::MultiBitFlip => Box::new(MultiBitFlip),
        AttackKind::BlockSplice => Box::new(BlockSplice),
        AttackKind::Replay => Box::new(Replay { captured: None }),
        AttackKind::VersionRollback => Box::new(VersionRollback { captured: None }),
        AttackKind::MacSubstitution => Box::new(MacSubstitution),
        AttackKind::CrossContextSplice => Box::new(CrossContextSplice),
    }
}

/// Single bit-flip on the stored block.
#[derive(Debug)]
pub struct BitFlip;

impl Adversary for BitFlip {
    fn kind(&self) -> AttackKind {
        AttackKind::BitFlip
    }
    fn observe(&mut self, _mem: &dyn FunctionalMemory, _victim: Addr) {}
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        let bit = point.rng.next_below(8 * live_bytes(point) as u64) as u16;
        mem.tamper_bits(point.victim, &[bit])
    }
}

/// Several distinct bit-flips on the stored block.
#[derive(Debug)]
pub struct MultiBitFlip;

impl Adversary for MultiBitFlip {
    fn kind(&self) -> AttackKind {
        AttackKind::MultiBitFlip
    }
    fn observe(&mut self, _mem: &dyn FunctionalMemory, _victim: Addr) {}
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        // 2..=8 distinct positions: distinctness guarantees the block
        // actually changes (a bit flipped twice cancels out).
        let wanted = (2 + point.rng.next_below(7) as usize).min(8 * live_bytes(point));
        let mut bits: Vec<u16> = Vec::with_capacity(wanted);
        while bits.len() < wanted {
            let bit = point.rng.next_below(8 * live_bytes(point) as u64) as u16;
            if !bits.contains(&bit) {
                bits.push(bit);
            }
        }
        mem.tamper_bits(point.victim, &bits)
    }
}

/// Relocate another block's stored state over the victim.
#[derive(Debug)]
pub struct BlockSplice;

impl Adversary for BlockSplice {
    fn kind(&self) -> AttackKind {
        AttackKind::BlockSplice
    }
    fn observe(&mut self, _mem: &dyn FunctionalMemory, _victim: Addr) {}
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        mem.splice_block(point.donor, point.victim)
    }
}

/// Capture the victim's full untrusted state, then re-supply it after the
/// victim has been rewritten.
#[derive(Debug)]
pub struct Replay {
    captured: Option<BlockCapture>,
}

impl Adversary for Replay {
    fn kind(&self) -> AttackKind {
        AttackKind::Replay
    }
    fn observe(&mut self, mem: &dyn FunctionalMemory, victim: Addr) {
        self.captured = mem.capture_block(victim);
    }
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        match &self.captured {
            Some(capture) => mem.restore_block(point.victim, capture),
            None => false,
        }
    }
}

/// Capture the victim's state, then roll back only the metadata.
#[derive(Debug)]
pub struct VersionRollback {
    captured: Option<BlockCapture>,
}

impl Adversary for VersionRollback {
    fn kind(&self) -> AttackKind {
        AttackKind::VersionRollback
    }
    fn observe(&mut self, mem: &dyn FunctionalMemory, victim: Addr) {
        self.captured = mem.capture_block(victim);
    }
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        match &self.captured {
            Some(capture) => mem.rollback_metadata(point.victim, capture),
            None => false,
        }
    }
}

/// Replace the victim's MAC with the donor's.
#[derive(Debug)]
pub struct MacSubstitution;

impl Adversary for MacSubstitution {
    fn kind(&self) -> AttackKind {
        AttackKind::MacSubstitution
    }
    fn observe(&mut self, _mem: &dyn FunctionalMemory, _victim: Addr) {}
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        mem.substitute_mac(point.victim, point.donor)
    }
}

/// Forge the victim block inside a foreign context (same scheme, different
/// keys) and install the foreign state at the victim address.
#[derive(Debug)]
pub struct CrossContextSplice;

impl Adversary for CrossContextSplice {
    fn kind(&self) -> AttackKind {
        AttackKind::CrossContextSplice
    }
    fn observe(&mut self, _mem: &dyn FunctionalMemory, _victim: Addr) {}
    fn inject(&mut self, mem: &mut dyn FunctionalMemory, point: &mut AttackPoint<'_>) -> bool {
        let Some(foreign) = point.foreign.as_deref_mut() else {
            return false;
        };
        // The attacker controls the other context, so it can produce any
        // plaintext it wants — with the *foreign* keys and metadata.
        let mut plaintext = [0u8; BLOCK_SIZE];
        for chunk in plaintext.chunks_exact_mut(8) {
            chunk.copy_from_slice(&point.rng.next_u64().to_le_bytes());
        }
        foreign.write_block(point.victim, point.version, plaintext);
        let Some(capture) = foreign.capture_block(point.victim) else {
            return false;
        };
        mem.restore_block(point.victim, &capture)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{build_functional, TreelessMemory};
    use crate::SchemeKind;
    use tnpu_crypto::Key128;

    fn written(kind: SchemeKind) -> Box<dyn FunctionalMemory> {
        let mut mem = build_functional(kind, Key128::derive(b"adv-test"), 256);
        mem.write_block(Addr(0), 1, [1u8; 64]);
        mem.write_block(Addr(64), 1, [2u8; 64]);
        mem
    }

    fn point<'a>(rng: &'a mut SplitMix64) -> AttackPoint<'a> {
        AttackPoint {
            victim: Addr(0),
            donor: Addr(64),
            version: 1,
            live_bytes: BLOCK_SIZE,
            foreign: None,
            rng,
        }
    }

    #[test]
    fn bit_flip_detected_by_treeless_only_where_macs_exist() {
        for kind in SchemeKind::ALL {
            let mut mem = written(kind);
            let mut rng = SplitMix64::new(3);
            let mut adv = adversary(AttackKind::BitFlip);
            adv.observe(&mem, Addr(0));
            assert!(adv.inject(&mut mem, &mut point(&mut rng)), "{kind}");
            let read = mem.read_block(Addr(0), 1);
            match kind {
                SchemeKind::Treeless | SchemeKind::TreeBased => {
                    assert!(read.is_err(), "{kind} must detect the flip");
                }
                SchemeKind::EncryptOnly | SchemeKind::Unsecure => {
                    assert_ne!(
                        read.expect("no integrity check fires"),
                        [1u8; 64],
                        "{kind} silently corrupts"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_bit_flip_changes_block_every_seed() {
        // Distinctness means an even number of flips can never cancel.
        for seed in 0..32 {
            let mut mem = written(SchemeKind::Unsecure);
            let mut rng = SplitMix64::new(seed);
            let mut adv = adversary(AttackKind::MultiBitFlip);
            assert!(adv.inject(&mut mem, &mut point(&mut rng)));
            assert_ne!(mem.read_block(Addr(0), 1).expect("unprotected"), [1u8; 64]);
        }
    }

    #[test]
    fn bit_flips_respect_the_live_window() {
        // Flips must land in the bytes the consumer reads, else a
        // truncating reader never sees the corruption.
        for seed in 0..16 {
            let mut mem = written(SchemeKind::Unsecure);
            let mut rng = SplitMix64::new(seed);
            let mut adv = adversary(AttackKind::BitFlip);
            let mut p = point(&mut rng);
            p.live_bytes = 4;
            assert!(adv.inject(&mut mem, &mut p));
            let read = mem.read_block(Addr(0), 1).expect("unprotected");
            assert_eq!(read[4..], [1u8; 60], "tail untouched");
            assert_ne!(read[..4], [1u8; 4], "window corrupted");
        }
    }

    #[test]
    fn replay_needs_rewrite_to_matter_and_versions_catch_it() {
        let mut mem = written(SchemeKind::Treeless);
        let mut adv = adversary(AttackKind::Replay);
        adv.observe(&mem, Addr(0));
        // Victim rewrites under a bumped version; attacker re-supplies the
        // stale state; the expected version is now 2.
        mem.write_block(Addr(0), 2, [9u8; 64]);
        let mut rng = SplitMix64::new(0);
        let mut p = point(&mut rng);
        p.version = 2;
        assert!(adv.inject(&mut mem, &mut p));
        assert!(mem.read_block(Addr(0), 2).is_err(), "stale MAC must fail");
    }

    #[test]
    fn rollback_leaves_data_but_stales_metadata_on_treeless() {
        let mut mem = TreelessMemory::new(Key128::derive(b"rb"));
        mem.write_block(Addr(0), 1, [1u8; 64]);
        let mut adv = adversary(AttackKind::VersionRollback);
        adv.observe(&mem, Addr(0));
        mem.write_block(Addr(0), 2, [5u8; 64]);
        let ct_before = mem.dram().read_block(Addr(0));
        let mut rng = SplitMix64::new(0);
        assert!(adv.inject(&mut mem, &mut point(&mut rng)));
        assert_eq!(mem.dram().read_block(Addr(0)), ct_before, "data untouched");
        assert!(mem.read_block(Addr(0), 2).is_err(), "stale MAC detected");
    }

    #[test]
    fn mac_substitution_not_applicable_without_macs() {
        for kind in [SchemeKind::Unsecure, SchemeKind::EncryptOnly] {
            let mut mem = written(kind);
            let mut rng = SplitMix64::new(0);
            let mut adv = adversary(AttackKind::MacSubstitution);
            assert!(!adv.inject(&mut mem, &mut point(&mut rng)), "{kind}");
        }
    }

    #[test]
    fn cross_context_splice_fails_verification_under_victim_keys() {
        let mut mem = written(SchemeKind::Treeless);
        let mut foreign = build_functional(SchemeKind::Treeless, Key128::derive(b"other"), 256);
        let mut rng = SplitMix64::new(1);
        let mut p = point(&mut rng);
        p.foreign = Some(&mut foreign);
        let mut adv = adversary(AttackKind::CrossContextSplice);
        assert!(adv.inject(&mut mem, &mut p));
        assert!(
            mem.read_block(Addr(0), 1).is_err(),
            "foreign MAC key differs"
        );
    }

    #[test]
    fn strategies_report_their_kind_and_capture_needs() {
        for kind in AttackKind::ALL {
            assert_eq!(adversary(kind).kind(), kind);
        }
        assert!(AttackKind::Replay.needs_capture());
        assert!(AttackKind::VersionRollback.needs_capture());
        assert!(!AttackKind::BitFlip.needs_capture());
        let labels: std::collections::BTreeSet<_> =
            AttackKind::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), AttackKind::ALL.len());
    }
}
