//! Seeded environmental fault injection over a functional memory.
//!
//! [`FaultyMemory`] wraps any [`FunctionalMemory`] and perturbs its *read
//! path* with environment-style faults: transient bit flips that clear on
//! re-read, persistent stuck-at bits, dropped or stalled DMA bursts, and
//! crypto-engine soft errors. The taxonomy is deliberately disjoint from
//! [`crate::adversary`]: an adversary chooses *where* and *what* to tamper
//! to defeat a scheme; the environment fires blindly at a configured rate
//! and holds no state about the victim. Recovery policy (retry, backoff,
//! re-encryption sweeps) lives in the secure runner — this module only
//! produces the hazards.
//!
//! Everything is driven by one [`SplitMix64`] seeded from run labels, so a
//! fault schedule is a pure function of the access sequence: byte-identical
//! across runs and thread counts, per the workspace determinism contract.
//!
//! This file is under the `unchecked-arith` lint: fault accounting and bit
//! addressing use checked/saturating arithmetic throughout.

use crate::functional::{BlockCapture, FunctionalMemory, IntegrityError, MismatchCause};
use crate::SchemeKind;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use tnpu_sim::rng::SplitMix64;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Bits per 64 B block.
const BLOCK_BITS: u64 = 512;

/// The environmental fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// One DRAM bit flips in flight and clears on re-read (particle strike
    /// on the bus/buffer, not the cell).
    TransientBitFlip,
    /// A short burst of 2–4 bits flips in flight and clears on re-read.
    TransientMultiBitFlip,
    /// A DRAM cell latches: the bit reads as a fixed value until the row is
    /// physically replaced. Persistent — re-reads and rewrites both see it.
    StuckAtBit,
    /// The DMA burst is dropped: the consumer sees an all-zero block. The
    /// stored state is untouched, so a re-issued transfer succeeds.
    DroppedRead,
    /// The transfer stalls past the bus timeout before any bytes move.
    /// Recoverable by re-issue on every scheme — there is nothing to
    /// verify, so even unprotected memory notices.
    StalledTransfer,
    /// A soft error inside the crypto engine: a spurious verification
    /// failure on MAC schemes (retry recovers), a corrupted decrypt on
    /// encrypt-only (silent), nothing on unprotected memory.
    CryptoSoftError,
}

impl FaultKind {
    /// All fault kinds, in presentation order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::TransientBitFlip,
        FaultKind::TransientMultiBitFlip,
        FaultKind::StuckAtBit,
        FaultKind::DroppedRead,
        FaultKind::StalledTransfer,
        FaultKind::CryptoSoftError,
    ];

    /// Fixed-width table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TransientBitFlip => "transient-bit-flip",
            FaultKind::TransientMultiBitFlip => "transient-multi-flip",
            FaultKind::StuckAtBit => "stuck-at-bit",
            FaultKind::DroppedRead => "dropped-read",
            FaultKind::StalledTransfer => "stalled-transfer",
            FaultKind::CryptoSoftError => "crypto-soft-error",
        }
    }

    /// Whether the fault clears on a re-issued read (bounded retry can
    /// recover it) as opposed to persisting in the stored state.
    #[must_use]
    pub fn is_transient(self) -> bool {
        !matches!(self, FaultKind::StuckAtBit)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A latched DRAM cell: bit `bit` of its block always reads as `value`.
#[derive(Debug, Clone, Copy)]
struct StuckBit {
    bit: u16,
    value: bool,
}

/// A functional memory with an environmental fault process layered over
/// its read path.
///
/// `period` is the expected number of block reads between fault arrivals
/// (a Bernoulli process with rate `1/period` per read, drawn from the
/// seeded RNG); `0` disables injection entirely, making the wrapper a
/// transparent forwarder.
#[derive(Debug)]
pub struct FaultyMemory<M: FunctionalMemory> {
    inner: RefCell<M>,
    kind: FaultKind,
    period: u64,
    rng: RefCell<SplitMix64>,
    stuck: RefCell<BTreeMap<u64, StuckBit>>,
    injected: Cell<u64>,
}

impl<M: FunctionalMemory> FaultyMemory<M> {
    /// Wrap `inner` with a `kind` fault process firing once per `period`
    /// reads on average, driven by `seed`.
    #[must_use]
    pub fn new(inner: M, kind: FaultKind, period: u64, seed: u64) -> Self {
        FaultyMemory {
            inner: RefCell::new(inner),
            kind,
            period,
            rng: RefCell::new(SplitMix64::new(seed)),
            stuck: RefCell::new(BTreeMap::new()),
            injected: Cell::new(0),
        }
    }

    /// How many faults have been injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// The configured fault kind.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Blocks currently holding a latched (stuck-at) cell.
    #[must_use]
    pub fn stuck_blocks(&self) -> usize {
        self.stuck.borrow().len()
    }

    fn count_injection(&self) {
        self.injected.set(self.injected.get().saturating_add(1));
    }

    /// One Bernoulli draw of the rate process.
    fn fires(&self) -> bool {
        if self.period == 0 {
            return false;
        }
        self.rng.borrow_mut().next_below(self.period) == 0
    }

    fn pick_bit(&self) -> u16 {
        self.rng.borrow_mut().next_below(BLOCK_BITS) as u16
    }

    /// Whether `bit` is set in the stored (untrusted) bytes of a capture.
    fn bit_of(capture: &BlockCapture, bit: u16) -> bool {
        let byte = usize::from(bit).checked_div(8).expect("nonzero") % BLOCK_SIZE;
        capture.bytes[byte] & (1u8 << (bit % 8)) != 0
    }

    /// Re-force every latched cell of `addr`'s block onto the stored state
    /// (what the physical defect does continuously).
    fn force_stuck(&self, addr: Addr) {
        let unit = addr.block().0;
        let Some(s) = self.stuck.borrow().get(&unit).copied() else {
            return;
        };
        let Some(cap) = self.inner.borrow().capture_block(addr) else {
            return;
        };
        if Self::bit_of(&cap, s.bit) != s.value {
            self.inner.borrow_mut().tamper_bits(addr, &[s.bit]);
        }
    }

    /// Latch a fresh stuck-at cell in `addr`'s block (first fire only — a
    /// block holds at most one defect).
    fn latch_stuck(&self, addr: Addr) {
        let unit = addr.block().0;
        if self.stuck.borrow().contains_key(&unit) {
            return; // already defective; nothing new arrives
        }
        let Some(cap) = self.inner.borrow().capture_block(addr) else {
            return; // nothing stored: no cell content to latch onto
        };
        let bit = self.pick_bit();
        // The cell latches onto the complement of its current value — a
        // latch onto the same value would be invisible.
        let value = !Self::bit_of(&cap, bit);
        self.inner.borrow_mut().tamper_bits(addr, &[bit]);
        self.stuck
            .borrow_mut()
            .insert(unit, StuckBit { bit, value });
        self.count_injection();
    }

    /// Flip `bits` in flight, read, and flip them back (the stored state
    /// clears on re-read).
    fn read_with_flipped(
        &self,
        addr: Addr,
        version: u64,
        bits: &[u16],
    ) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        self.inner.borrow_mut().tamper_bits(addr, bits);
        let result = self.inner.borrow().read_block(addr, version);
        self.inner.borrow_mut().tamper_bits(addr, bits);
        result
    }

    fn inject_read(&self, addr: Addr, version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        match self.kind {
            FaultKind::TransientBitFlip => {
                self.count_injection();
                self.read_with_flipped(addr, version, &[self.pick_bit()])
            }
            FaultKind::TransientMultiBitFlip => {
                self.count_injection();
                let burst = self.rng.borrow_mut().next_below(3).saturating_add(2);
                let mut bits: Vec<u16> = Vec::new();
                while (bits.len() as u64) < burst {
                    let bit = self.pick_bit();
                    if !bits.contains(&bit) {
                        bits.push(bit);
                    }
                }
                self.read_with_flipped(addr, version, &bits)
            }
            FaultKind::StuckAtBit => {
                self.latch_stuck(addr);
                self.inner.borrow().read_block(addr, version)
            }
            FaultKind::DroppedRead => {
                self.count_injection();
                let Some(cap) = self.inner.borrow().capture_block(addr) else {
                    return self.inner.borrow().read_block(addr, version);
                };
                // The burst never arrives: the consumer sees zeros. Flip
                // every set bit of the stored bytes for the duration of
                // the read, then restore — the store itself is untouched.
                let bits: Vec<u16> = (0..BLOCK_BITS as u16)
                    .filter(|&b| Self::bit_of(&cap, b))
                    .collect();
                self.read_with_flipped(addr, version, &bits)
            }
            FaultKind::StalledTransfer => {
                self.count_injection();
                Err(IntegrityError::Stalled { addr: addr.0 })
            }
            FaultKind::CryptoSoftError => match self.inner.borrow().scheme() {
                // The verification unit mis-computes one tag: a spurious
                // mismatch with nothing actually wrong in the store.
                SchemeKind::Treeless | SchemeKind::TreeBased => {
                    self.count_injection();
                    Err(IntegrityError::MacMismatch {
                        addr: addr.0,
                        cause: MismatchCause::Content,
                    })
                }
                // The decrypt pipeline glitches: one plaintext bit is
                // wrong and nothing can notice.
                SchemeKind::EncryptOnly => {
                    self.count_injection();
                    let mut pt = self.inner.borrow().read_block(addr, version)?;
                    let bit = self.pick_bit();
                    let byte = usize::from(bit).checked_div(8).expect("nonzero") % BLOCK_SIZE;
                    pt[byte] ^= 1u8 << (bit % 8);
                    Ok(pt)
                }
                // No crypto engine exists to err.
                SchemeKind::Unsecure => self.inner.borrow().read_block(addr, version),
            },
        }
    }
}

impl<M: FunctionalMemory> FunctionalMemory for FaultyMemory<M> {
    fn scheme(&self) -> SchemeKind {
        self.inner.borrow().scheme()
    }

    fn write_block(&mut self, addr: Addr, version: u64, plaintext: [u8; BLOCK_SIZE]) {
        self.inner.get_mut().write_block(addr, version, plaintext);
        // A latched cell reasserts itself over whatever was written.
        self.force_stuck(addr);
    }

    fn read_block(&self, addr: Addr, version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        self.force_stuck(addr);
        if self.fires() {
            self.inject_read(addr, version)
        } else {
            self.inner.borrow().read_block(addr, version)
        }
    }

    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool {
        self.inner.get_mut().tamper_bits(addr, bits)
    }

    fn capture_block(&self, addr: Addr) -> Option<BlockCapture> {
        self.inner.borrow().capture_block(addr)
    }

    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        self.inner.get_mut().restore_block(addr, capture)
    }

    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        self.inner.get_mut().rollback_metadata(addr, capture)
    }

    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool {
        self.inner.get_mut().splice_block(donor, victim)
    }

    fn substitute_mac(&mut self, victim: Addr, donor: Addr) -> bool {
        self.inner.get_mut().substitute_mac(victim, donor)
    }

    fn dram_contains(&self, needle: &[u8]) -> bool {
        self.inner.borrow().dram_contains(needle)
    }

    fn rekey(&mut self, epoch: u64) -> bool {
        self.inner.get_mut().rekey(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{build_functional, TreelessMemory, UnsecureMemory};
    use tnpu_crypto::Key128;

    fn filled_treeless(kind: FaultKind, period: u64) -> FaultyMemory<TreelessMemory> {
        let mut inner = TreelessMemory::new(Key128::derive(b"faulty"));
        for b in 0..8u64 {
            inner.write_block(Addr(b * 64), 1, [b as u8 + 1; 64]);
        }
        FaultyMemory::new(inner, kind, period, 0xfa017)
    }

    #[test]
    fn disabled_injector_is_transparent() {
        let m = filled_treeless(FaultKind::TransientBitFlip, 0);
        for b in 0..8u64 {
            assert_eq!(
                m.read_block(Addr(b * 64), 1).expect("clean"),
                [b as u8 + 1; 64]
            );
        }
        assert_eq!(m.injected(), 0);
    }

    #[test]
    fn transient_flip_fails_once_then_clears() {
        // period 1: every read fires.
        let m = filled_treeless(FaultKind::TransientBitFlip, 1);
        let first = m.read_block(Addr(0), 1);
        assert!(
            matches!(
                first,
                Err(IntegrityError::MacMismatch {
                    cause: MismatchCause::Content,
                    ..
                })
            ),
            "{first:?}"
        );
        // The flip cleared; a fault-free wrapper over the same store reads
        // clean (the injector itself would fire again at period 1).
        let inner = m.inner.into_inner();
        assert_eq!(inner.read_block(Addr(0), 1).expect("cleared"), [1u8; 64]);
    }

    #[test]
    fn stuck_bit_persists_across_reads_and_writes() {
        let mut m = filled_treeless(FaultKind::StuckAtBit, 1);
        assert!(m.read_block(Addr(0), 1).is_err(), "latched cell detected");
        assert_eq!(m.stuck_blocks(), 1);
        assert!(
            m.read_block(Addr(0), 1).is_err(),
            "still latched on re-read"
        );
        // A rewrite does not fix the physical cell. Whether one particular
        // rewrite trips it depends on whether its ciphertext bit matches
        // the latched value, so write several distinct blocks: the defect
        // must corrupt at least one of them.
        let mut any_failed = false;
        for i in 0..8u64 {
            m.write_block(Addr(0), 2 + i, [0x10 + i as u8; 64]);
            if m.read_block(Addr(0), 2 + i).is_err() {
                any_failed = true;
                break;
            }
        }
        assert!(any_failed, "defect survives rewrites");
        assert_eq!(m.stuck_blocks(), 1, "still the same single latched cell");
    }

    #[test]
    fn stalled_transfer_reports_stalled_and_leaves_store_intact() {
        let m = filled_treeless(FaultKind::StalledTransfer, 1);
        assert_eq!(
            m.read_block(Addr(0), 1),
            Err(IntegrityError::Stalled { addr: 0 })
        );
        let inner = m.inner.into_inner();
        assert_eq!(inner.read_block(Addr(0), 1).expect("intact"), [1u8; 64]);
    }

    #[test]
    fn dropped_read_reads_zero_on_unprotected_memory() {
        let mut inner = UnsecureMemory::new();
        inner.write_block(Addr(0), 1, [0xffu8; 64]);
        let m = FaultyMemory::new(inner, FaultKind::DroppedRead, 1, 7);
        assert_eq!(m.read_block(Addr(0), 1).expect("no check"), [0u8; 64]);
        // The store itself was not changed.
        let inner = m.inner.into_inner();
        assert_eq!(inner.read_block(Addr(0), 1).expect("intact"), [0xffu8; 64]);
    }

    #[test]
    fn crypto_soft_error_never_fires_on_unsecure() {
        let mut inner = UnsecureMemory::new();
        inner.write_block(Addr(0), 1, [3u8; 64]);
        let m = FaultyMemory::new(inner, FaultKind::CryptoSoftError, 1, 7);
        for _ in 0..4 {
            assert_eq!(m.read_block(Addr(0), 1).expect("no engine"), [3u8; 64]);
        }
        assert_eq!(m.injected(), 0);
    }

    #[test]
    fn crypto_soft_error_silently_corrupts_encrypt_only() {
        let mut inner =
            build_functional(crate::SchemeKind::EncryptOnly, Key128::derive(b"soft"), 64);
        inner.write_block(Addr(0), 1, [9u8; 64]);
        let m = FaultyMemory::new(inner, FaultKind::CryptoSoftError, 1, 7);
        let pt = m.read_block(Addr(0), 1).expect("no integrity check");
        assert_ne!(pt, [9u8; 64], "one plaintext bit wrong");
        assert_eq!(m.injected(), 1);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let run = || {
            let m = filled_treeless(FaultKind::TransientMultiBitFlip, 3);
            let results: Vec<bool> = (0..8u64)
                .map(|b| m.read_block(Addr(b * 64), 1).is_ok())
                .collect();
            (results, m.injected())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn labels_are_distinct_and_transience_is_stuck_only() {
        let labels: std::collections::BTreeSet<_> =
            FaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), FaultKind::ALL.len());
        for kind in FaultKind::ALL {
            assert_eq!(kind.is_transient(), kind != FaultKind::StuckAtBit);
        }
    }
}
