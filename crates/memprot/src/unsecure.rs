//! The unprotected engine — every figure in the paper normalizes to it.

use crate::engine::{AccessCost, EngineStats, ProtectionEngine};
use crate::SchemeKind;
use tnpu_sim::Addr;

/// No encryption, no integrity: all accesses are free of metadata cost.
#[derive(Debug, Clone, Default)]
pub struct UnsecureEngine {
    stats: EngineStats,
}

impl UnsecureEngine {
    /// Create the engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ProtectionEngine for UnsecureEngine {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::Unsecure
    }

    fn read_block(&mut self, _addr: Addr, _version: u64) -> AccessCost {
        AccessCost::FREE
    }

    fn write_block(&mut self, _addr: Addr, _version: u64) -> AccessCost {
        AccessCost::FREE
    }

    fn stats(&self) -> EngineStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    fn flush(&mut self) -> AccessCost {
        AccessCost::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_free() {
        let mut e = UnsecureEngine::new();
        assert_eq!(e.read_block(Addr(0), 1), AccessCost::FREE);
        assert_eq!(e.write_block(Addr(64), 2), AccessCost::FREE);
        assert_eq!(e.version_access(Addr(0), true), AccessCost::FREE);
        assert_eq!(e.pipeline_latency(), tnpu_sim::Cycles::ZERO);
        assert_eq!(e.stats().traffic.total(), 0);
    }
}
