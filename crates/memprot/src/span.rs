//! Grouped-metadata span math shared by the run-batched engine paths.
//!
//! A run of consecutive data blocks covers a short range of metadata
//! blocks: with `group` data blocks per metadata block
//! ([`Layout::counters_per_block`] for counters, [`MACS_PER_BLOCK`] for
//! MACs), the run `[first, first + len)` decomposes into spans, one per
//! distinct metadata index, each knowing how many data blocks it covers.
//! The engines charge each span's metadata block once (cache access plus
//! traffic) and multiply per-data-block effects by `covered` — the batching
//! that makes run costs O(metadata blocks) instead of O(data blocks).
//!
//! [`Layout::counters_per_block`]: crate::layout::Layout
//! [`MACS_PER_BLOCK`]: crate::layout::MACS_PER_BLOCK

/// One metadata block's share of a data-block run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaSpan {
    /// Metadata block index (data block index divided by the group size).
    pub index: u64,
    /// Number of the run's data blocks covered by this metadata block
    /// (always >= 1 for yielded spans).
    pub covered: u64,
}

/// Decompose the data-block run `[first_block, first_block + len)` into
/// per-metadata-block spans, in ascending index order.
///
/// # Panics
///
/// Panics if `group` is zero.
///
/// # Examples
///
/// ```
/// use tnpu_memprot::span::{meta_spans, MetaSpan};
/// let spans: Vec<_> = meta_spans(6, 5, 8).collect();
/// assert_eq!(
///     spans,
///     vec![
///         MetaSpan { index: 0, covered: 2 }, // blocks 6..8
///         MetaSpan { index: 1, covered: 3 }, // blocks 8..11
///     ]
/// );
/// ```
pub fn meta_spans(first_block: u64, len: u64, group: u64) -> impl Iterator<Item = MetaSpan> {
    assert!(group > 0, "metadata group must be non-zero");
    // Saturation is exact in practice: data-block indices come from a
    // `Layout`-clamped region far below u64::MAX.
    let end = first_block.saturating_add(len);
    let mut b = first_block;
    core::iter::from_fn(move || {
        if b >= end {
            return None;
        }
        let index = b / group;
        let next = index.saturating_add(1).saturating_mul(group).min(end);
        let span = MetaSpan {
            index,
            covered: next - b,
        };
        b = next;
        Some(span)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(first: u64, len: u64, group: u64) -> Vec<MetaSpan> {
        meta_spans(first, len, group).collect()
    }

    #[test]
    fn run_inside_one_group_yields_one_span() {
        assert_eq!(
            collect(65, 3, 64),
            vec![MetaSpan {
                index: 1,
                covered: 3
            }]
        );
    }

    #[test]
    fn spans_break_at_group_boundaries() {
        assert_eq!(
            collect(62, 68, 64),
            vec![
                MetaSpan {
                    index: 0,
                    covered: 2
                },
                MetaSpan {
                    index: 1,
                    covered: 64
                },
                MetaSpan {
                    index: 2,
                    covered: 2
                },
            ]
        );
    }

    #[test]
    fn zero_length_run_yields_nothing() {
        assert!(collect(17, 0, 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_group_panics() {
        let _ = meta_spans(0, 1, 0).count();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference semantics: walk every data block, grouping consecutive
    /// equal metadata indices.
    fn naive_spans(first: u64, len: u64, group: u64) -> Vec<MetaSpan> {
        let mut out: Vec<MetaSpan> = Vec::new();
        for b in first..first + len {
            let index = b / group;
            match out.last_mut() {
                Some(span) if span.index == index => span.covered += 1,
                _ => out.push(MetaSpan { index, covered: 1 }),
            }
        }
        out
    }

    proptest! {
        #[test]
        fn spans_match_per_block_grouping(
            first in 0u64..1000,
            len in 0u64..300,
            group in 1u64..70,
        ) {
            prop_assert_eq!(
                collect_spans(first, len, group),
                naive_spans(first, len, group)
            );
            let covered: u64 =
                meta_spans(first, len, group).map(|s| s.covered).sum();
            prop_assert_eq!(covered, len);
        }
    }

    fn collect_spans(first: u64, len: u64, group: u64) -> Vec<MetaSpan> {
        meta_spans(first, len, group).collect()
    }
}
