//! Physical address layout of the protected DRAM (paper Fig. 10).
//!
//! The data DRAM occupies `[0, dram_size)`. The security metadata —
//! counter blocks, integrity-tree levels, and the MAC region — is placed in
//! *disjoint reserved address windows above the data DRAM* so that metadata
//! addresses never collide with data addresses in the metadata caches. The
//! paper likewise reserves "a separate fixed region ... to store MACs of the
//! entire DRAM space"; putting the windows above the data region (instead of
//! carving them out of it) keeps the data region contiguous without changing
//! any cache behaviour, since only address *distinctness* matters to the
//! tag-only cache models.

use tnpu_sim::{Addr, BlockAddr, BLOCK_SIZE};

/// Base of the counter-block window.
pub const COUNTER_BASE: u64 = 1 << 40;
/// Base of the integrity-tree window; each tree level gets a 2³⁶-byte slot.
pub const TREE_BASE: u64 = 1 << 41;
/// Stride between tree-level windows.
pub const TREE_LEVEL_STRIDE: u64 = 1 << 36;
/// Base of the MAC region window.
pub const MAC_BASE: u64 = 1 << 42;
/// MACs per 64 B MAC block (8 B MAC each).
pub const MACS_PER_BLOCK: u64 = 8;

/// Address-space layout helper for one protected region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Bytes of data DRAM covered.
    pub dram_size: u64,
    /// Data blocks covered per counter block (SC-64: 64).
    pub counters_per_block: u64,
}

impl Layout {
    /// Create a layout covering `dram_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `dram_size` is zero, not block-aligned, or too large for
    /// the reserved metadata windows.
    #[must_use]
    pub fn new(dram_size: u64, counters_per_block: u64) -> Self {
        assert!(dram_size > 0, "dram size must be non-zero");
        assert_eq!(
            dram_size % BLOCK_SIZE as u64,
            0,
            "dram size must be block aligned"
        );
        assert!(
            dram_size < COUNTER_BASE,
            "dram too large for metadata windows"
        );
        assert!(counters_per_block > 0);
        Layout {
            dram_size,
            counters_per_block,
        }
    }

    /// Number of 64 B data blocks covered.
    #[must_use]
    pub fn data_blocks(&self) -> u64 {
        self.dram_size / BLOCK_SIZE as u64
    }

    /// Number of counter blocks needed to cover the data region.
    #[must_use]
    pub fn counter_blocks(&self) -> u64 {
        self.data_blocks().div_ceil(self.counters_per_block)
    }

    /// Index of the counter block holding the counter for `block`.
    #[must_use]
    pub fn counter_index(&self, block: BlockAddr) -> u64 {
        debug_assert!(self.contains_block(block), "block outside covered region");
        block.0 / self.counters_per_block
    }

    /// Address of the counter block for a data block — this is what the
    /// counter cache is indexed with.
    #[must_use]
    pub fn counter_addr(&self, block: BlockAddr) -> Addr {
        self.counter_index_addr(self.counter_index(block))
    }

    /// Address of the counter block with index `index` (the run-batched
    /// paths work in metadata indices and map back to addresses here).
    #[must_use]
    pub fn counter_index_addr(&self, index: u64) -> Addr {
        Addr(COUNTER_BASE + index * BLOCK_SIZE as u64)
    }

    /// Address of the tree node at `level` (1-based; level 0 is the counter
    /// blocks themselves) with node index `node`.
    #[must_use]
    pub fn tree_node_addr(&self, level: u32, node: u64) -> Addr {
        Addr(TREE_BASE + u64::from(level) * TREE_LEVEL_STRIDE + node * BLOCK_SIZE as u64)
    }

    /// Address of the MAC block holding the MAC for `block`.
    #[must_use]
    pub fn mac_addr(&self, block: BlockAddr) -> Addr {
        self.mac_index_addr(block.0 / MACS_PER_BLOCK)
    }

    /// Address of the MAC block with index `index`.
    #[must_use]
    pub fn mac_index_addr(&self, index: u64) -> Addr {
        Addr(MAC_BASE + index * BLOCK_SIZE as u64)
    }

    /// Whether a data block falls inside the covered region.
    #[must_use]
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        block.0 < self.data_blocks()
    }

    /// Bytes of MAC storage required for the covered region (8 B per block).
    #[must_use]
    pub fn mac_storage_bytes(&self) -> u64 {
        self.data_blocks() * 8
    }

    /// Bytes of counter storage required (one 64 B block per
    /// `counters_per_block` data blocks).
    #[must_use]
    pub fn counter_storage_bytes(&self) -> u64 {
        self.counter_blocks() * BLOCK_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        Layout::new(4 << 30, 64)
    }

    #[test]
    fn geometry_for_4gb() {
        let l = layout();
        assert_eq!(l.data_blocks(), (4u64 << 30) / 64);
        assert_eq!(l.counter_blocks(), l.data_blocks() / 64);
        // MAC region = 1/8 of DRAM.
        assert_eq!(l.mac_storage_bytes(), (4u64 << 30) / 8);
        // Counter storage = 1/64 of DRAM.
        assert_eq!(l.counter_storage_bytes(), (4u64 << 30) / 64);
    }

    #[test]
    fn consecutive_blocks_share_counter_block() {
        let l = layout();
        assert_eq!(l.counter_addr(BlockAddr(0)), l.counter_addr(BlockAddr(63)));
        assert_ne!(l.counter_addr(BlockAddr(0)), l.counter_addr(BlockAddr(64)));
    }

    #[test]
    fn eight_blocks_share_mac_block() {
        let l = layout();
        assert_eq!(l.mac_addr(BlockAddr(0)), l.mac_addr(BlockAddr(7)));
        assert_ne!(l.mac_addr(BlockAddr(0)), l.mac_addr(BlockAddr(8)));
    }

    #[test]
    fn metadata_windows_are_disjoint() {
        let l = layout();
        let ctr = l.counter_addr(BlockAddr(l.data_blocks() - 1)).0;
        let mac = l.mac_addr(BlockAddr(l.data_blocks() - 1)).0;
        let tree = l.tree_node_addr(1, l.counter_blocks() / 64).0;
        assert!((COUNTER_BASE..TREE_BASE).contains(&ctr));
        assert!((TREE_BASE..MAC_BASE).contains(&tree));
        assert!(mac >= MAC_BASE);
    }

    #[test]
    fn tree_levels_are_disjoint() {
        let l = layout();
        // Node 0 of level 2 must not alias node anything of level 1.
        assert_ne!(l.tree_node_addr(1, 0), l.tree_node_addr(2, 0));
        assert!(l.tree_node_addr(2, 0).0 - l.tree_node_addr(1, 0).0 == TREE_LEVEL_STRIDE);
    }

    #[test]
    #[should_panic(expected = "block aligned")]
    fn unaligned_size_panics() {
        let _ = Layout::new(100, 64);
    }

    #[test]
    fn small_region_counter_blocks_round_up() {
        let l = Layout::new(64 * 100, 64); // 100 data blocks
        assert_eq!(l.counter_blocks(), 2);
    }
}
