//! Split-counter blocks (SC-64, paper §III-B / Yan et al. ref 33).
//!
//! A 64 B counter block packs one 64-bit *major* counter and 64 7-bit
//! *minor* counters, one per data block of the covered 4 KB page. A data
//! block's effective counter is `major ‖ minor`; when a minor counter
//! saturates, the major is bumped, every minor resets, and the whole page
//! must be re-encrypted under the new major — the overflow cost the timing
//! engine charges.

/// Maximum value of a 7-bit minor counter.
pub const MINOR_MAX: u8 = 127;
/// Minor counters per block (SC-64).
pub const MINORS: usize = 64;

/// One split-counter block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitCounterBlock {
    major: u64,
    minors: [u8; MINORS],
}

impl Default for SplitCounterBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of bumping a minor counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bump {
    /// The minor counter incremented normally.
    Minor,
    /// The minor overflowed: the major was incremented, all minors reset,
    /// and the whole covered page must be re-encrypted.
    Overflow,
}

impl SplitCounterBlock {
    /// A fresh block: major 0, all minors 0.
    #[must_use]
    pub fn new() -> Self {
        SplitCounterBlock {
            major: 0,
            minors: [0; MINORS],
        }
    }

    /// The major counter.
    #[must_use]
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The effective counter of slot `slot`: `major * 128 + minor`, unique
    /// per (page-write-epoch, block-update) pair.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    #[must_use]
    pub fn counter(&self, slot: usize) -> u64 {
        self.major * u64::from(MINOR_MAX + 1) + u64::from(self.minors[slot])
    }

    /// Bump slot `slot` for a write; reports whether the page overflowed.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    pub fn bump(&mut self, slot: usize) -> Bump {
        if self.minors[slot] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; MINORS];
            // The written block takes minor 1 after the reset (its write is
            // the first in the new epoch); its siblings re-encrypt at 0.
            self.minors[slot] = 1;
            Bump::Overflow
        } else {
            self.minors[slot] += 1;
            Bump::Minor
        }
    }

    /// Whether the next [`bump`](Self::bump) of `slot` will overflow the
    /// page.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64`.
    #[must_use]
    pub fn will_overflow(&self, slot: usize) -> bool {
        self.minors[slot] == MINOR_MAX
    }

    /// Overwrite a minor counter directly — the *attack hook* (counter
    /// blocks live in untrusted DRAM; only the tree protects them).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 64` or `value` does not fit 7 bits.
    pub fn set_minor_raw(&mut self, slot: usize, value: u8) {
        assert!(value <= MINOR_MAX, "minor counters are 7 bits");
        self.minors[slot] = value;
    }

    /// Serialize to the 64 B DRAM representation (8 B major + 56 B of
    /// packed 7-bit minors).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        // Pack 64 x 7-bit minors into 56 bytes.
        let mut bit = 0usize;
        for &m in &self.minors {
            let byte = bit / 8;
            let off = bit % 8;
            let v = u16::from(m) << off;
            out[8 + byte] |= (v & 0xff) as u8;
            if off > 1 {
                out[8 + byte + 1] |= (v >> 8) as u8;
            }
            bit += 7;
        }
        out
    }

    /// Deserialize from the DRAM representation.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut major_bytes = [0u8; 8];
        major_bytes.copy_from_slice(&bytes[..8]);
        let mut minors = [0u8; MINORS];
        let mut bit = 0usize;
        for m in &mut minors {
            let byte = bit / 8;
            let off = bit % 8;
            let lo = u16::from(bytes[8 + byte]) >> off;
            let hi = if off > 1 {
                u16::from(bytes[8 + byte + 1]) << (8 - off)
            } else {
                0
            };
            *m = ((lo | hi) & 0x7f) as u8;
            bit += 7;
        }
        SplitCounterBlock {
            major: u64::from_le_bytes(major_bytes),
            minors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_increment() {
        let mut b = SplitCounterBlock::new();
        assert_eq!(b.counter(0), 0);
        assert_eq!(b.bump(0), Bump::Minor);
        assert_eq!(b.counter(0), 1);
        assert_eq!(b.counter(1), 0, "slots are independent");
    }

    #[test]
    fn counters_never_repeat_across_overflow() {
        // The security property: the effective counter of a slot is
        // strictly increasing through an overflow.
        let mut b = SplitCounterBlock::new();
        let mut last = b.counter(7);
        for _ in 0..300 {
            b.bump(7);
            let now = b.counter(7);
            assert!(now > last, "counter repeated: {last} -> {now}");
            last = now;
        }
        assert!(b.major() >= 2, "two overflows in 300 bumps");
    }

    #[test]
    fn overflow_resets_siblings() {
        let mut b = SplitCounterBlock::new();
        b.bump(3);
        for _ in 0..MINOR_MAX {
            b.bump(0);
        }
        // Slot 0 is saturated; the next bump overflows the page.
        assert_eq!(b.bump(0), Bump::Overflow);
        assert_eq!(b.major(), 1);
        // Slot 3's minor was reset: its effective counter moved to the new
        // epoch (larger than any pre-overflow value).
        assert_eq!(b.counter(3), 128);
    }

    #[test]
    fn sibling_counters_also_strictly_increase_over_overflow() {
        let mut b = SplitCounterBlock::new();
        b.bump(5); // counter(5) = 1
        let before = b.counter(5);
        for _ in 0..=MINOR_MAX {
            b.bump(9);
        }
        assert!(b.counter(5) > before, "epoch bump keeps siblings fresh");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = SplitCounterBlock::new();
        for i in 0..MINORS {
            for _ in 0..(i % 7) {
                b.bump(i);
            }
        }
        for _ in 0..200 {
            b.bump(0);
        }
        let bytes = b.to_bytes();
        assert_eq!(SplitCounterBlock::from_bytes(&bytes), b);
    }

    #[test]
    fn serialized_fits_one_block_with_room_for_nothing() {
        // 8 B major + 64 * 7 bits = 8 + 56 B = exactly 64 B: the SC-64
        // packing the paper's counter cache entry holds.
        let b = SplitCounterBlock::new();
        assert_eq!(b.to_bytes().len(), 64);
    }
}
