//! Geometry of the counter integrity tree.
//!
//! Level 0 of the tree is the counter blocks themselves; each level above
//! hashes `arity` children (64 in the paper's SC-64 setup). The root never
//! leaves the chip, so a verification walk climbs from the missing counter
//! block towards the root and stops at the first level that is already
//! trusted (cached in the hash cache) or at the root.

/// Static shape of an integrity tree over `counter_blocks` level-0 blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeGeometry {
    /// Arity used between level `l` and `l+1` (`arities[0]` groups counter
    /// blocks into level-1 nodes). The last entry repeats for any deeper
    /// levels.
    arities: Vec<u64>,
    /// Node counts per level; `levels[0]` = counter blocks, last = 1 (root).
    levels: Vec<u64>,
}

impl TreeGeometry {
    /// Build the geometry for `counter_blocks` leaves with a uniform arity.
    ///
    /// # Panics
    ///
    /// Panics if `counter_blocks` is zero or `arity < 2`.
    #[must_use]
    pub fn new(counter_blocks: u64, arity: u64) -> Self {
        Self::with_arities(counter_blocks, &[arity])
    }

    /// Build a geometry with per-level arities — the VAULT design (paper
    /// related-work ref 18) uses wider nodes near the leaves and narrower
    /// ones near the root; the last entry repeats for deeper levels.
    ///
    /// # Panics
    ///
    /// Panics if `counter_blocks` is zero, `arities` is empty, or any
    /// arity is below 2.
    #[must_use]
    pub fn with_arities(counter_blocks: u64, arities: &[u64]) -> Self {
        assert!(counter_blocks > 0, "tree must cover at least one block");
        assert!(!arities.is_empty(), "need at least one arity");
        assert!(arities.iter().all(|&a| a >= 2), "arity must be at least 2");
        let mut levels = vec![counter_blocks];
        let mut n = counter_blocks;
        let mut level = 0usize;
        while n > 1 {
            let arity = arities[level.min(arities.len() - 1)];
            n = n.div_ceil(arity);
            levels.push(n);
            level += 1;
        }
        // A single counter block still gets an on-chip root above it.
        if levels.len() == 1 {
            levels.push(1);
        }
        TreeGeometry {
            arities: arities.to_vec(),
            levels,
        }
    }

    /// VAULT-style geometry: arity 64 at the first level, halving down to
    /// 8 towards the root.
    #[must_use]
    pub fn vault(counter_blocks: u64) -> Self {
        Self::with_arities(counter_blocks, &[64, 32, 16, 8])
    }

    /// Arity between `level` and `level + 1`.
    #[must_use]
    pub fn arity_at(&self, level: u32) -> u64 {
        self.arities[(level as usize).min(self.arities.len() - 1)]
    }

    /// First-level arity (uniform trees: the arity).
    #[must_use]
    pub fn arity(&self) -> u64 {
        self.arities[0]
    }

    /// Number of levels including the counter-block level and the root.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.levels.len() as u32
    }

    /// Index of the root level.
    #[must_use]
    pub fn root_level(&self) -> u32 {
        self.depth() - 1
    }

    /// Node count at `level` (0 = counter blocks).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn nodes_at(&self, level: u32) -> u64 {
        self.levels[level as usize]
    }

    /// The node index at `level` on the path from counter block
    /// `counter_index` to the root.
    #[must_use]
    pub fn ancestor(&self, counter_index: u64, level: u32) -> u64 {
        let mut idx = counter_index;
        for l in 0..level {
            idx /= self.arity_at(l);
        }
        idx
    }

    /// Iterate over the `(level, node_index)` pairs of the verification path
    /// from `counter_index` (exclusive) up to, but not including, the root.
    /// These are the nodes that live in DRAM and may be cached in the hash
    /// cache.
    pub fn walk(&self, counter_index: u64) -> impl Iterator<Item = (u32, u64)> + '_ {
        (1..self.root_level()).map(move |level| (level, self.ancestor(counter_index, level)))
    }

    /// Total tree-node storage (levels 1..root, 64 B each), in bytes. The
    /// root lives on-chip and is excluded.
    #[must_use]
    pub fn node_storage_bytes(&self) -> u64 {
        self.levels[1..self.levels.len() - 1]
            .iter()
            .sum::<u64>()
            .saturating_mul(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_gb_dram_depth() {
        // 4 GB / 4 KB per counter block = 1 Mi counter blocks.
        // 1Mi -> 16Ki -> 256 -> 4 -> 1: depth 5, root level 4.
        let g = TreeGeometry::new(1 << 20, 64);
        assert_eq!(g.depth(), 5);
        assert_eq!(g.nodes_at(1), 1 << 14);
        assert_eq!(g.nodes_at(2), 256);
        assert_eq!(g.nodes_at(3), 4);
        assert_eq!(g.nodes_at(4), 1);
    }

    #[test]
    fn fully_protected_region_depth() {
        // 128 MB / 4 KB = 32 Ki counter blocks: 32Ki -> 512 -> 8 -> 1.
        let g = TreeGeometry::new(32 << 10, 64);
        assert_eq!(g.depth(), 4);
        assert_eq!(g.root_level(), 3);
    }

    #[test]
    fn walk_excludes_root_and_leaves() {
        let g = TreeGeometry::new(1 << 20, 64);
        let path: Vec<_> = g.walk(0).collect();
        assert_eq!(path, vec![(1, 0), (2, 0), (3, 0)]);
        let path: Vec<_> = g.walk((1 << 20) - 1).collect();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], (1, (1 << 14) - 1));
    }

    #[test]
    fn ancestor_math() {
        let g = TreeGeometry::new(64 * 64, 64);
        assert_eq!(g.ancestor(0, 1), 0);
        assert_eq!(g.ancestor(63, 1), 0);
        assert_eq!(g.ancestor(64, 1), 1);
        assert_eq!(g.ancestor(64 * 64 - 1, 1), 63);
        assert_eq!(g.ancestor(64 * 64 - 1, 2), 0);
    }

    #[test]
    fn tiny_tree_has_onchip_root_only() {
        let g = TreeGeometry::new(1, 64);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.walk(0).count(), 0, "no in-memory tree nodes");
        assert_eq!(g.node_storage_bytes(), 0);
    }

    #[test]
    fn vault_geometry_narrows_towards_root() {
        // 1 Mi counter blocks: 1Mi -64-> 16Ki -32-> 512 -16-> 32 -8-> 4 -8-> 1.
        let g = TreeGeometry::vault(1 << 20);
        assert_eq!(g.nodes_at(1), 1 << 14);
        assert_eq!(g.nodes_at(2), 512);
        assert_eq!(g.nodes_at(3), 32);
        assert_eq!(g.nodes_at(4), 4);
        assert_eq!(g.nodes_at(5), 1);
        assert_eq!(g.arity_at(0), 64);
        assert_eq!(g.arity_at(3), 8);
        assert_eq!(g.arity_at(9), 8, "last arity repeats");
        // Deeper than the uniform 64-ary tree over the same leaves.
        assert!(g.depth() > TreeGeometry::new(1 << 20, 64).depth());
    }

    #[test]
    fn vault_ancestors_consistent_with_levels() {
        let g = TreeGeometry::vault(1 << 20);
        for counter in [0u64, 1, 63, 64, (1 << 20) - 1] {
            for level in 1..g.root_level() {
                assert!(
                    g.ancestor(counter, level) < g.nodes_at(level),
                    "counter {counter} level {level}"
                );
            }
        }
    }

    #[test]
    fn storage_accounting() {
        let g = TreeGeometry::new(1 << 20, 64);
        // Levels 1..3: 16Ki + 256 + 4 nodes of 64 B.
        assert_eq!(g.node_storage_bytes(), ((1 << 14) + 256 + 4) * 64);
    }
}
