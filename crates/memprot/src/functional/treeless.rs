//! Functional tree-less protected memory: AES-XTS + versioned MACs over
//! real bytes (paper Fig. 12).

use super::dram::RawDram;
use super::{flip_bits, BlockCapture, FunctionalMemory, IntegrityError, MismatchCause};
use crate::SchemeKind;
use std::collections::BTreeMap;
use tnpu_crypto::mac::{BlockMac, MacTag};
use tnpu_crypto::xts::XtsMode;
use tnpu_crypto::Key128;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Tree-less protected memory: ciphertext and MACs live in untrusted
/// storage; the caller (CPU-side enclave software) supplies the version
/// number on every access, exactly like the `mvin`/`mvout` extension of the
/// paper.
///
/// # Examples
///
/// ```
/// use tnpu_memprot::functional::TreelessMemory;
/// use tnpu_crypto::Key128;
/// use tnpu_sim::Addr;
///
/// let mut mem = TreelessMemory::new(Key128::derive(b"demo"));
/// mem.write_block(Addr(0), 1, [42u8; 64]);
/// assert_eq!(mem.read_block(Addr(0), 1).unwrap(), [42u8; 64]);
/// assert!(mem.read_block(Addr(0), 2).is_err()); // stale version expected
/// ```
#[derive(Debug)]
pub struct TreelessMemory {
    dram: RawDram,
    macs: BTreeMap<u64, MacTag>,
    xts: XtsMode,
    mac: BlockMac,
    /// Retained for epoch re-keying (the exhaustion sweep).
    master: Key128,
}

/// How far the failure-path diagnosis probes around the expected version
/// when classifying a MAC mismatch. Replay windows in practice are a few
/// versions wide (one bump per inference pass); anything further away is
/// indistinguishable from content tampering.
const VERSION_PROBE_WINDOW: u64 = 8;

impl TreelessMemory {
    /// Create a protected memory with keys derived from `master`.
    #[must_use]
    pub fn new(master: Key128) -> Self {
        let mut mac_label = b"treeless-mac".to_vec();
        mac_label.extend_from_slice(&master.0);
        TreelessMemory {
            dram: RawDram::new(),
            macs: BTreeMap::new(),
            xts: XtsMode::from_master(master),
            mac: BlockMac::new(Key128::derive(&mac_label)),
            master,
        }
    }

    /// Classify a MAC mismatch (failure path only — runs real crypto over
    /// the probe window, but only once a read has already been rejected).
    fn diagnose(
        &self,
        addr: Addr,
        version: u64,
        ct: &[u8; BLOCK_SIZE],
        tag: MacTag,
    ) -> MismatchCause {
        // Version: the stored pair verifies under a nearby version — stale
        // state was replayed over a newer write (or the table ran ahead).
        for delta in 1..=VERSION_PROBE_WINDOW {
            for v in [version.checked_sub(delta), version.checked_add(delta)]
                .into_iter()
                .flatten()
            {
                if self.mac.verify(addr.0, v, ct, tag) {
                    return MismatchCause::Version;
                }
            }
        }
        // Address: the identical (ciphertext, tag) pair is stored intact at
        // another address — it was relocated/spliced to this one.
        let unit = addr.block().0;
        for (&other, &other_tag) in &self.macs {
            if other == unit || other_tag != tag {
                continue;
            }
            if let Some(other_ct) = self.dram.read_block(Addr(other * BLOCK_SIZE as u64)) {
                if other_ct == *ct {
                    return MismatchCause::Address;
                }
            }
        }
        MismatchCause::Content
    }

    /// Encrypt and store a block with `version` (the `mvout` path,
    /// Fig. 12 (a)).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64 B aligned.
    pub fn write_block(&mut self, addr: Addr, version: u64, plaintext: [u8; BLOCK_SIZE]) {
        assert_eq!(addr.block_offset(), 0, "unaligned write at {addr}");
        let unit = addr.block().0;
        let mut ct = plaintext;
        self.xts.encrypt_block(unit, &mut ct);
        // The MAC binds the *stored* bytes, the address, and the version.
        let tag = self.mac.tag(addr.0, version, &ct);
        self.dram.write_block(addr, ct);
        self.macs.insert(unit, tag);
    }

    /// Fetch, verify against the expected `version`, and decrypt a block
    /// (the `mvin` path, Fig. 12 (b)).
    ///
    /// # Errors
    ///
    /// * [`IntegrityError::NotWritten`] — nothing stored at `addr`.
    /// * [`IntegrityError::MacMismatch`] — content, address or version is
    ///   inconsistent (tampering or replay).
    pub fn read_block(&self, addr: Addr, version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        let unit = addr.block().0;
        let ct = self
            .dram
            .read_block(addr)
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })?;
        let tag = self
            .macs
            .get(&unit)
            .copied()
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })?;
        if !self.mac.verify(addr.0, version, &ct, tag) {
            return Err(IntegrityError::MacMismatch {
                addr: addr.0,
                cause: self.diagnose(addr, version, &ct, tag),
            });
        }
        let mut pt = ct;
        self.xts.decrypt_block(unit, &mut pt);
        Ok(pt)
    }

    /// The untrusted DRAM — attack hook.
    pub fn dram_mut(&mut self) -> &mut RawDram {
        &mut self.dram
    }

    /// The untrusted DRAM, read-only (for confidentiality scans).
    #[must_use]
    pub fn dram(&self) -> &RawDram {
        &self.dram
    }

    /// Overwrite the stored MAC of a block — attack hook (the MAC region is
    /// ordinary untrusted DRAM).
    pub fn set_mac(&mut self, addr: Addr, tag: MacTag) {
        self.macs.insert(addr.block().0, tag);
    }

    /// Snapshot `(ciphertext, MAC)` of a block — the first half of a replay
    /// attack.
    #[must_use]
    pub fn snapshot(&self, addr: Addr) -> Option<([u8; BLOCK_SIZE], MacTag)> {
        let ct = self.dram.read_block(addr)?;
        let tag = self.macs.get(&addr.block().0).copied()?;
        Some((ct, tag))
    }

    /// Restore a previous `(ciphertext, MAC)` snapshot — the second half of
    /// a replay attack. Both items are attacker-visible and attacker-
    /// writable, which is why a MAC alone cannot stop replay.
    pub fn restore(&mut self, addr: Addr, snapshot: ([u8; BLOCK_SIZE], MacTag)) {
        self.dram.write_block(addr, snapshot.0);
        self.macs.insert(addr.block().0, snapshot.1);
    }
}

impl FunctionalMemory for TreelessMemory {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::Treeless
    }

    fn write_block(&mut self, addr: Addr, version: u64, plaintext: [u8; BLOCK_SIZE]) {
        TreelessMemory::write_block(self, addr, version, plaintext);
    }

    fn read_block(&self, addr: Addr, version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        TreelessMemory::read_block(self, addr, version)
    }

    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool {
        flip_bits(&mut self.dram, addr, bits)
    }

    fn capture_block(&self, addr: Addr) -> Option<BlockCapture> {
        let (bytes, mac) = self.snapshot(addr)?;
        Some(BlockCapture {
            bytes,
            mac: Some(mac),
            counters: None,
        })
    }

    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        let Some(mac) = capture.mac else {
            return false; // a MAC-less capture has nothing to install here
        };
        self.restore(addr, (capture.bytes, mac));
        true
    }

    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        // The MAC region is ordinary untrusted DRAM: roll only it back,
        // leaving the current ciphertext in place.
        let Some(mac) = capture.mac else {
            return false;
        };
        self.set_mac(addr, mac);
        true
    }

    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool {
        let Some(snap) = self.snapshot(donor) else {
            return false;
        };
        self.restore(victim, snap);
        true
    }

    fn substitute_mac(&mut self, victim: Addr, donor: Addr) -> bool {
        let Some(tag) = self.macs.get(&donor.block().0).copied() else {
            return false;
        };
        self.set_mac(victim, tag);
        true
    }

    fn dram_contains(&self, needle: &[u8]) -> bool {
        self.dram.contains_bytes(needle)
    }

    fn rekey(&mut self, epoch: u64) -> bool {
        let mut label = b"treeless-epoch".to_vec();
        label.extend_from_slice(&epoch.to_le_bytes());
        label.extend_from_slice(&self.master.0);
        let epoch_master = Key128::derive(&label);
        let mut mac_label = b"treeless-mac".to_vec();
        mac_label.extend_from_slice(&epoch_master.0);
        self.xts = XtsMode::from_master(epoch_master);
        self.mac = BlockMac::new(Key128::derive(&mac_label));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> TreelessMemory {
        TreelessMemory::new(Key128::derive(b"test"))
    }

    #[test]
    fn roundtrip() {
        let mut m = mem();
        let data: [u8; 64] = std::array::from_fn(|i| i as u8);
        m.write_block(Addr(256), 5, data);
        assert_eq!(m.read_block(Addr(256), 5).expect("verifies"), data);
    }

    #[test]
    fn confidentiality_no_plaintext_in_dram() {
        let mut m = mem();
        let mut secret = [0u8; 64];
        secret[..16].copy_from_slice(b"TOP-SECRET-MODEL");
        m.write_block(Addr(0), 1, secret);
        assert!(!m.dram().contains_bytes(b"TOP-SECRET-MODEL"));
    }

    #[test]
    fn tampering_ciphertext_detected() {
        let mut m = mem();
        m.write_block(Addr(0), 1, [1u8; 64]);
        m.dram_mut().block_mut(Addr(0)).expect("present")[0] ^= 1;
        assert_eq!(
            m.read_block(Addr(0), 1),
            Err(IntegrityError::MacMismatch {
                addr: 0,
                cause: MismatchCause::Content
            })
        );
    }

    #[test]
    fn tampering_mac_detected() {
        let mut m = mem();
        m.write_block(Addr(0), 1, [1u8; 64]);
        m.set_mac(Addr(0), MacTag([0xde; 8]));
        assert!(m.read_block(Addr(0), 1).is_err());
    }

    #[test]
    fn replay_with_correct_version_tracking_detected() {
        // Attacker snapshots version-1 state, victim writes version 2,
        // attacker restores the old state. Software expects version 2:
        // the stale MAC (bound to version 1) fails.
        let mut m = mem();
        m.write_block(Addr(0), 1, [1u8; 64]);
        let old = m.snapshot(Addr(0)).expect("present");
        m.write_block(Addr(0), 2, [2u8; 64]);
        m.restore(Addr(0), old);
        assert_eq!(
            m.read_block(Addr(0), 2),
            Err(IntegrityError::MacMismatch {
                addr: 0,
                cause: MismatchCause::Version
            })
        );
    }

    #[test]
    fn replay_undetected_without_version_bump() {
        // If the software does NOT bump the version on update (a broken
        // version-management policy), the replayed old block verifies —
        // demonstrating that the version number is what provides replay
        // protection, not the MAC itself.
        let mut m = mem();
        m.write_block(Addr(0), 7, [1u8; 64]);
        let old = m.snapshot(Addr(0)).expect("present");
        m.write_block(Addr(0), 7, [2u8; 64]); // version NOT bumped
        m.restore(Addr(0), old);
        assert_eq!(m.read_block(Addr(0), 7).expect("verifies"), [1u8; 64]);
    }

    #[test]
    fn relocation_detected() {
        // Copying a valid (ciphertext, MAC) pair to another address fails:
        // the MAC binds the address. (Decryption would also scramble it —
        // the tweak differs — but the MAC check fires first.)
        let mut m = mem();
        m.write_block(Addr(0), 1, [9u8; 64]);
        let snap = m.snapshot(Addr(0)).expect("present");
        m.write_block(Addr(64), 1, [8u8; 64]);
        m.restore(Addr(64), snap);
        assert_eq!(
            m.read_block(Addr(64), 1),
            Err(IntegrityError::MacMismatch {
                addr: 64,
                cause: MismatchCause::Address
            }),
            "diagnosis must see the pair intact at its donor address"
        );
    }

    #[test]
    fn never_written_is_reported() {
        let m = mem();
        assert_eq!(
            m.read_block(Addr(0), 0),
            Err(IntegrityError::NotWritten { addr: 0 })
        );
    }

    #[test]
    fn same_tensor_blocks_share_version() {
        // A tile's blocks all carry the tile's version — write a 4-block
        // tile under one version and read it back.
        let mut m = mem();
        for i in 0..4u64 {
            m.write_block(Addr(i * 64), 3, [i as u8; 64]);
        }
        for i in 0..4u64 {
            assert_eq!(m.read_block(Addr(i * 64), 3).expect("ok"), [i as u8; 64]);
        }
    }
}
