//! Functional encryption-only memory — the scalable-SGX model (§II-B).
//!
//! AES-XTS with no MACs and no tree: confidentiality holds, but integrity
//! does not — tampered ciphertext silently decrypts to garbage and replayed
//! ciphertext decrypts to the stale plaintext. The tests here *prove the
//! absence* of protection, which is the motivation for TNPU's versioned
//! MACs: "this new SGX memory protection against physical attacks" is
//! confidentiality-only.

use super::dram::RawDram;
use super::{flip_bits, BlockCapture, FunctionalMemory, IntegrityError};
use crate::SchemeKind;
use tnpu_crypto::xts::XtsMode;
use tnpu_crypto::Key128;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Encryption-only protected memory (no integrity).
#[derive(Debug)]
pub struct EncryptOnlyMemory {
    dram: RawDram,
    xts: XtsMode,
    /// Retained for epoch re-keying (the exhaustion sweep).
    master: Key128,
}

impl EncryptOnlyMemory {
    /// Create a memory with keys derived from `master`.
    #[must_use]
    pub fn new(master: Key128) -> Self {
        EncryptOnlyMemory {
            dram: RawDram::new(),
            xts: XtsMode::from_master(master),
            master,
        }
    }

    /// Encrypt and store a block.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64 B aligned.
    pub fn write_block(&mut self, addr: Addr, plaintext: [u8; BLOCK_SIZE]) {
        assert_eq!(addr.block_offset(), 0, "unaligned write at {addr}");
        let mut ct = plaintext;
        self.xts.encrypt_block(addr.block().0, &mut ct);
        self.dram.write_block(addr, ct);
    }

    /// Fetch and decrypt a block. **No integrity check happens** — the only
    /// possible error is that nothing was ever written there.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::NotWritten`] if the block was never stored.
    pub fn read_block(&self, addr: Addr) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        let ct = self
            .dram
            .read_block(addr)
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })?;
        let mut pt = ct;
        self.xts.decrypt_block(addr.block().0, &mut pt);
        Ok(pt)
    }

    /// The untrusted DRAM — attack hook.
    pub fn dram_mut(&mut self) -> &mut RawDram {
        &mut self.dram
    }

    /// The untrusted DRAM, read-only.
    #[must_use]
    pub fn dram(&self) -> &RawDram {
        &self.dram
    }
}

impl FunctionalMemory for EncryptOnlyMemory {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::EncryptOnly
    }

    fn write_block(&mut self, addr: Addr, _version: u64, plaintext: [u8; BLOCK_SIZE]) {
        EncryptOnlyMemory::write_block(self, addr, plaintext);
    }

    fn read_block(&self, addr: Addr, _version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        EncryptOnlyMemory::read_block(self, addr)
    }

    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool {
        flip_bits(&mut self.dram, addr, bits)
    }

    fn capture_block(&self, addr: Addr) -> Option<BlockCapture> {
        Some(BlockCapture {
            bytes: self.dram.read_block(addr)?,
            mac: None,
            counters: None,
        })
    }

    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        self.dram.write_block(addr, capture.bytes);
        true
    }

    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        // No per-block metadata: rolling "the version" back means
        // re-installing the old ciphertext, which decrypts cleanly.
        self.dram.write_block(addr, capture.bytes);
        true
    }

    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool {
        let Some(ct) = self.dram.read_block(donor) else {
            return false;
        };
        self.dram.write_block(victim, ct);
        true
    }

    fn substitute_mac(&mut self, _victim: Addr, _donor: Addr) -> bool {
        false // no MACs exist in this scheme
    }

    fn dram_contains(&self, needle: &[u8]) -> bool {
        self.dram.contains_bytes(needle)
    }

    fn rekey(&mut self, epoch: u64) -> bool {
        let mut label = b"encrypt-only-epoch".to_vec();
        label.extend_from_slice(&epoch.to_le_bytes());
        label.extend_from_slice(&self.master.0);
        self.xts = XtsMode::from_master(Key128::derive(&label));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> EncryptOnlyMemory {
        EncryptOnlyMemory::new(Key128::derive(b"enc-only"))
    }

    #[test]
    fn roundtrip_and_confidentiality() {
        let mut m = mem();
        let mut secret = [0u8; 64];
        secret[..6].copy_from_slice(b"SECRET");
        m.write_block(Addr(0), secret);
        assert_eq!(m.read_block(Addr(0)).expect("written"), secret);
        assert!(!m.dram().contains_bytes(b"SECRET"));
    }

    #[test]
    fn tampering_goes_undetected_but_scrambles() {
        // The security gap: the read *succeeds* — garbage flows into the
        // computation with no error raised.
        let mut m = mem();
        m.write_block(Addr(0), [7u8; 64]);
        m.dram_mut().block_mut(Addr(0)).expect("written")[0] ^= 1;
        let result = m.read_block(Addr(0)).expect("no integrity check fires");
        assert_ne!(result, [7u8; 64], "data silently corrupted");
    }

    #[test]
    fn replay_goes_completely_undetected() {
        // Worse than scrambling: a replayed ciphertext decrypts to the
        // exact stale plaintext — the attacker controls which old value
        // the victim computes on. This is what TNPU's version numbers
        // close.
        let mut m = mem();
        m.write_block(Addr(0), [1u8; 64]);
        let old = m.dram().read_block(Addr(0)).expect("written");
        m.write_block(Addr(0), [2u8; 64]);
        m.dram_mut().write_block(Addr(0), old);
        assert_eq!(
            m.read_block(Addr(0)).expect("no check"),
            [1u8; 64],
            "attacker successfully rolled the value back"
        );
    }

    #[test]
    fn relocation_scrambles_but_is_not_reported() {
        // Moving ciphertext to another address changes the XTS tweak, so
        // the plaintext scrambles — but again, no error.
        let mut m = mem();
        m.write_block(Addr(0), [3u8; 64]);
        let ct = m.dram().read_block(Addr(0)).expect("written");
        m.dram_mut().write_block(Addr(64), ct);
        let relocated = m.read_block(Addr(64)).expect("no check");
        assert_ne!(relocated, [3u8; 64]);
    }
}
