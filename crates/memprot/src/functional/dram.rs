//! Sparse simulated DRAM holding ciphertext blocks.

use std::collections::BTreeMap;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// A sparse byte store at 64 B block granularity.
///
/// This is the *untrusted* DRAM: tests use [`RawDram::block_mut`] to model
/// a physical attacker flipping bits on the memory bus or module.
///
/// # Examples
///
/// ```
/// use tnpu_memprot::functional::RawDram;
/// use tnpu_sim::Addr;
///
/// let mut dram = RawDram::new();
/// dram.write_block(Addr(0), [7u8; 64]);
/// assert_eq!(dram.read_block(Addr(0)), Some([7u8; 64]));
/// assert_eq!(dram.read_block(Addr(64)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RawDram {
    blocks: BTreeMap<u64, [u8; BLOCK_SIZE]>,
}

impl RawDram {
    /// Empty DRAM.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a block. `addr` must be block-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64 B aligned.
    pub fn write_block(&mut self, addr: Addr, data: [u8; BLOCK_SIZE]) {
        assert_eq!(addr.block_offset(), 0, "unaligned block write at {addr}");
        self.blocks.insert(addr.block().0, data);
    }

    /// Load a block, if it was ever written.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64 B aligned.
    #[must_use]
    pub fn read_block(&self, addr: Addr) -> Option<[u8; BLOCK_SIZE]> {
        assert_eq!(addr.block_offset(), 0, "unaligned block read at {addr}");
        self.blocks.get(&addr.block().0).copied()
    }

    /// Direct mutable access to a stored block — the physical-attack hook.
    pub fn block_mut(&mut self, addr: Addr) -> Option<&mut [u8; BLOCK_SIZE]> {
        self.blocks.get_mut(&addr.block().0)
    }

    /// Number of blocks ever written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether `needle` appears anywhere in the stored bytes — used by
    /// confidentiality tests to assert plaintext never reaches DRAM.
    #[must_use]
    pub fn contains_bytes(&self, needle: &[u8]) -> bool {
        if needle.is_empty() {
            return true;
        }
        self.blocks
            .values()
            .any(|block| block.windows(needle.len()).any(|w| w == needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut d = RawDram::new();
        assert!(d.is_empty());
        d.write_block(Addr(128), [3u8; 64]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.read_block(Addr(128)), Some([3u8; 64]));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_write_panics() {
        RawDram::new().write_block(Addr(3), [0u8; 64]);
    }

    #[test]
    fn tamper_hook() {
        let mut d = RawDram::new();
        d.write_block(Addr(0), [0u8; 64]);
        d.block_mut(Addr(0)).expect("present")[5] = 0xff;
        assert_eq!(d.read_block(Addr(0)).expect("present")[5], 0xff);
    }

    #[test]
    fn contains_bytes_scans_across_content() {
        let mut d = RawDram::new();
        let mut block = [0u8; 64];
        block[10..14].copy_from_slice(b"SECR");
        d.write_block(Addr(0), block);
        assert!(d.contains_bytes(b"SECR"));
        assert!(!d.contains_bytes(b"ABSENT"));
        assert!(d.contains_bytes(b""));
    }
}
