//! Functional (real-bytes) implementations of the protection schemes.
//!
//! The timing engines ([`crate::tree_engine`], [`crate::treeless_engine`])
//! model *cost*; the types in this module implement the actual datapath
//! with [`tnpu_crypto`] so the paper's security claims can be tested:
//! ciphertext in DRAM, per-block MACs, counters with a real hash tree, and
//! attack hooks that simulate physical tampering and replay.
//!
//! These run per-byte crypto and are used by tests, examples and the
//! functional mode of the secure runner — not by the figure sweeps.

pub mod dram;
pub mod encrypt_only;
pub mod tree;
pub mod treeless;
pub mod unsecure;

pub use dram::RawDram;
pub use encrypt_only::EncryptOnlyMemory;
pub use tree::CounterTreeMemory;
pub use treeless::TreelessMemory;
pub use unsecure::UnsecureMemory;

use crate::counters::SplitCounterBlock;
use crate::SchemeKind;
use tnpu_crypto::mac::MacTag;
use tnpu_crypto::Key128;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Which binding of the per-block MAC failed — the cause discriminant a
/// retry policy needs. The MAC covers *(content, address, version)*; on a
/// mismatch the schemes run a deterministic failure-path diagnosis to tell
/// the three apart: content errors are worth re-fetching (a transient bus
/// flip clears on re-read), while address/version mismatches indicate
/// relocation or replay of otherwise-valid state and must escalate
/// immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MismatchCause {
    /// The stored bytes (or the tag itself) are inconsistent — tampering
    /// or a transient fault in the data path.
    Content,
    /// The stored `(ciphertext, tag)` pair is valid *somewhere else*: it
    /// was relocated/spliced from another address.
    Address,
    /// The pair verifies under a nearby version: stale state was replayed
    /// over a newer write.
    Version,
}

impl MismatchCause {
    /// Short diagnostic label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MismatchCause::Content => "content",
            MismatchCause::Address => "address",
            MismatchCause::Version => "version",
        }
    }
}

impl std::fmt::Display for MismatchCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a protected read was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The per-block MAC did not match.
    MacMismatch {
        /// Block base address of the failing block.
        addr: u64,
        /// Which of the MAC's three bindings is inconsistent.
        cause: MismatchCause,
    },
    /// A counter-tree node hash did not match — the counter has been
    /// tampered with or replayed.
    TreeMismatch {
        /// Tree level at which verification failed (0 = counter block).
        level: u32,
    },
    /// The block was never written (no ciphertext to return).
    NotWritten {
        /// Block base address of the missing block.
        addr: u64,
    },
    /// The DMA transfer stalled before any bytes arrived (bus timeout).
    /// Purely environmental — the stored state is untouched, so a re-issued
    /// transfer succeeds on every scheme.
    Stalled {
        /// Block base address of the stalled transfer.
        addr: u64,
    },
}

/// Issue vocabulary alias: the typed error protected reads propagate
/// instead of panicking.
pub type ProtectionError = IntegrityError;

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::MacMismatch { addr, cause } => {
                write!(
                    f,
                    "mac verification failed for block at {addr:#x} ({cause})"
                )
            }
            IntegrityError::TreeMismatch { level } => {
                write!(f, "integrity-tree verification failed at level {level}")
            }
            IntegrityError::NotWritten { addr } => {
                write!(f, "block at {addr:#x} was never written")
            }
            IntegrityError::Stalled { addr } => {
                write!(
                    f,
                    "dma transfer stalled for block at {addr:#x} (bus timeout)"
                )
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Everything a physical attacker can capture about one block from the
/// untrusted DRAM: the stored bytes, and whatever per-block metadata the
/// scheme also keeps there. Fields the scheme does not have are `None` —
/// an unprotected memory has no MAC to photograph.
#[derive(Debug, Clone)]
pub struct BlockCapture {
    /// The stored bytes (ciphertext, or plaintext for [`UnsecureMemory`]).
    pub bytes: [u8; BLOCK_SIZE],
    /// The stored per-block MAC, for schemes that keep one.
    pub mac: Option<MacTag>,
    /// The covering SC-64 counter block, for the counter-tree scheme.
    pub counters: Option<SplitCounterBlock>,
}

/// Object-safe view of a functional protected memory: the datapath the
/// secure runner drives, plus the *attack surface* a physical adversary
/// has — everything DRAM-resident is attacker-readable and -writable, and
/// nothing on-chip (keys, the tree root, the version table) is.
///
/// The `version` parameter of [`write_block`]/[`read_block`] is the
/// software-managed version number of the tree-less scheme; the other
/// schemes ignore it (the counter tree manages its own counters, and the
/// unprotected/encrypt-only memories have nothing to bind it to).
///
/// The attack hooks return `false` when the scheme has no such surface
/// (e.g. [`substitute_mac`] on a memory without MACs) or when the target
/// block was never written — the harness records those cells as
/// not-applicable rather than as a survived attack.
///
/// [`write_block`]: FunctionalMemory::write_block
/// [`read_block`]: FunctionalMemory::read_block
/// [`substitute_mac`]: FunctionalMemory::substitute_mac
pub trait FunctionalMemory: std::fmt::Debug {
    /// Which scheme this memory implements.
    fn scheme(&self) -> SchemeKind;

    /// Encrypt (if applicable) and store a block under `version`.
    fn write_block(&mut self, addr: Addr, version: u64, plaintext: [u8; BLOCK_SIZE]);

    /// Fetch, verify (if applicable) and decrypt a block, expecting
    /// `version`.
    ///
    /// # Errors
    ///
    /// [`IntegrityError`] when nothing was stored or verification fails.
    fn read_block(&self, addr: Addr, version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError>;

    /// Flip the given bit positions (`0..512`) of the stored block —
    /// bus/module tampering. Returns `false` if nothing is stored there.
    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool;

    /// Photograph a block's full untrusted state (first half of a replay).
    fn capture_block(&self, addr: Addr) -> Option<BlockCapture>;

    /// Write a capture back over a block's untrusted state (second half of
    /// a replay, or installation of foreign-context state). Returns `false`
    /// if the capture lacks metadata this scheme stores.
    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool;

    /// Roll back only the *metadata* of a block to a captured state (MAC,
    /// counters), leaving the current data bytes in place. On schemes with
    /// no per-block metadata this degenerates to rolling back the data
    /// itself — the strongest rollback the scheme exposes.
    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool;

    /// Copy the stored bytes (and MAC, where present) of `donor` over
    /// `victim` — ciphertext relocation/splicing. Returns `false` if the
    /// donor was never written.
    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool;

    /// Replace `victim`'s stored MAC with `donor`'s, leaving the data
    /// untouched. Returns `false` on schemes without MACs or when either
    /// block has none.
    fn substitute_mac(&mut self, victim: Addr, donor: Addr) -> bool;

    /// Whether `needle` appears anywhere in the untrusted store — the
    /// confidentiality probe.
    fn dram_contains(&self, needle: &[u8]) -> bool;

    /// Switch to the keys of re-encryption `epoch` (the version-exhaustion
    /// sweep's re-key step). The stored state is *not* touched: blocks
    /// written under the old epoch become unreadable until the sweep
    /// rewrites them, which is why callers must re-read everything first.
    /// Returns `false` on schemes with no keys to rotate.
    fn rekey(&mut self, epoch: u64) -> bool;
}

impl<M: FunctionalMemory + ?Sized> FunctionalMemory for Box<M> {
    fn scheme(&self) -> SchemeKind {
        (**self).scheme()
    }
    fn write_block(&mut self, addr: Addr, version: u64, plaintext: [u8; BLOCK_SIZE]) {
        (**self).write_block(addr, version, plaintext);
    }
    fn read_block(&self, addr: Addr, version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        (**self).read_block(addr, version)
    }
    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool {
        (**self).tamper_bits(addr, bits)
    }
    fn capture_block(&self, addr: Addr) -> Option<BlockCapture> {
        (**self).capture_block(addr)
    }
    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        (**self).restore_block(addr, capture)
    }
    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        (**self).rollback_metadata(addr, capture)
    }
    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool {
        (**self).splice_block(donor, victim)
    }
    fn substitute_mac(&mut self, victim: Addr, donor: Addr) -> bool {
        (**self).substitute_mac(victim, donor)
    }
    fn dram_contains(&self, needle: &[u8]) -> bool {
        (**self).dram_contains(needle)
    }
    fn rekey(&mut self, epoch: u64) -> bool {
        (**self).rekey(epoch)
    }
}

/// Construct the functional memory for `kind`. `data_blocks` sizes the
/// counter tree (the other schemes grow on demand) — pass the protected
/// footprint in 64 B blocks.
#[must_use]
pub fn build_functional(
    kind: SchemeKind,
    master: Key128,
    data_blocks: u64,
) -> Box<dyn FunctionalMemory> {
    match kind {
        SchemeKind::Unsecure => Box::new(UnsecureMemory::new()),
        SchemeKind::TreeBased => Box::new(CounterTreeMemory::new(master, data_blocks)),
        SchemeKind::Treeless => Box::new(TreelessMemory::new(master)),
        SchemeKind::EncryptOnly => Box::new(EncryptOnlyMemory::new(master)),
    }
}

/// Flip `bits` (bit positions in `0..512`) of a stored block, the shared
/// implementation behind every scheme's [`FunctionalMemory::tamper_bits`].
fn flip_bits(dram: &mut RawDram, addr: Addr, bits: &[u16]) -> bool {
    let Some(block) = dram.block_mut(addr) else {
        return false;
    };
    for &bit in bits {
        let byte = (bit as usize / 8) % BLOCK_SIZE;
        block[byte] ^= 1 << (bit % 8);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_functional_reports_scheme() {
        for kind in SchemeKind::ALL {
            let mem = build_functional(kind, Key128::derive(b"build"), 256);
            assert_eq!(mem.scheme(), kind);
        }
    }

    #[test]
    fn trait_datapath_roundtrips_on_every_scheme() {
        for kind in SchemeKind::ALL {
            let mut mem = build_functional(kind, Key128::derive(b"roundtrip"), 256);
            mem.write_block(Addr(128), 3, [0x5au8; 64]);
            assert_eq!(
                mem.read_block(Addr(128), 3).expect("clean read verifies"),
                [0x5au8; 64],
                "{kind}"
            );
        }
    }

    #[test]
    fn tamper_bits_on_missing_block_reports_false() {
        for kind in SchemeKind::ALL {
            let mut mem = build_functional(kind, Key128::derive(b"missing"), 256);
            assert!(!mem.tamper_bits(Addr(0), &[0]), "{kind}");
        }
    }

    #[test]
    fn error_display() {
        let e = IntegrityError::MacMismatch {
            addr: 0x40,
            cause: MismatchCause::Content,
        };
        assert!(e.to_string().contains("0x40"));
        assert!(e.to_string().contains("content"));
        let e = IntegrityError::TreeMismatch { level: 2 };
        assert!(e.to_string().contains("level 2"));
        let e = IntegrityError::NotWritten { addr: 0x80 };
        assert!(e.to_string().contains("never written"));
        let e = IntegrityError::Stalled { addr: 0xc0 };
        assert!(e.to_string().contains("stalled"));
    }

    #[test]
    fn mismatch_causes_have_distinct_labels() {
        let labels: std::collections::BTreeSet<_> = [
            MismatchCause::Content,
            MismatchCause::Address,
            MismatchCause::Version,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn rekey_alone_invalidates_old_blocks_on_keyed_schemes() {
        for kind in SchemeKind::ALL {
            let mut mem = build_functional(kind, Key128::derive(b"rekey"), 256);
            mem.write_block(Addr(0), 1, [0x11u8; 64]);
            let rotated = mem.rekey(1);
            match kind {
                SchemeKind::Unsecure => {
                    assert!(!rotated, "no keys to rotate");
                    assert_eq!(mem.read_block(Addr(0), 1).expect("plaintext"), [0x11u8; 64]);
                }
                _ => {
                    assert!(rotated, "{kind}");
                    // Old-epoch state no longer decrypts/verifies cleanly
                    // until rewritten — the sweep must rewrite everything.
                    let stale = mem.read_block(Addr(0), 1);
                    assert!(
                        stale.is_err() || stale.expect("encrypt-only") != [0x11u8; 64],
                        "{kind}: old-epoch block survived a rekey"
                    );
                    // A fresh write under the new epoch round-trips.
                    mem.write_block(Addr(0), 1, [0x22u8; 64]);
                    assert_eq!(mem.read_block(Addr(0), 1).expect("new epoch"), [0x22u8; 64]);
                }
            }
        }
    }
}
