//! Functional (real-bytes) implementations of the protection schemes.
//!
//! The timing engines ([`crate::tree_engine`], [`crate::treeless_engine`])
//! model *cost*; the types in this module implement the actual datapath
//! with [`tnpu_crypto`] so the paper's security claims can be tested:
//! ciphertext in DRAM, per-block MACs, counters with a real hash tree, and
//! attack hooks that simulate physical tampering and replay.
//!
//! These run per-byte crypto and are used by tests, examples and the
//! functional mode of the secure runner — not by the figure sweeps.

pub mod dram;
pub mod encrypt_only;
pub mod tree;
pub mod treeless;

pub use dram::RawDram;
pub use encrypt_only::EncryptOnlyMemory;
pub use tree::CounterTreeMemory;
pub use treeless::TreelessMemory;

/// Why a protected read was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The per-block MAC did not match (content, address or version is
    /// inconsistent with what was written).
    MacMismatch {
        /// Block base address of the failing block.
        addr: u64,
    },
    /// A counter-tree node hash did not match — the counter has been
    /// tampered with or replayed.
    TreeMismatch {
        /// Tree level at which verification failed (0 = counter block).
        level: u32,
    },
    /// The block was never written (no ciphertext to return).
    NotWritten {
        /// Block base address of the missing block.
        addr: u64,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::MacMismatch { addr } => {
                write!(f, "mac verification failed for block at {addr:#x}")
            }
            IntegrityError::TreeMismatch { level } => {
                write!(f, "integrity-tree verification failed at level {level}")
            }
            IntegrityError::NotWritten { addr } => {
                write!(f, "block at {addr:#x} was never written")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = IntegrityError::MacMismatch { addr: 0x40 };
        assert!(e.to_string().contains("0x40"));
        let e = IntegrityError::TreeMismatch { level: 2 };
        assert!(e.to_string().contains("level 2"));
        let e = IntegrityError::NotWritten { addr: 0x80 };
        assert!(e.to_string().contains("never written"));
    }
}
