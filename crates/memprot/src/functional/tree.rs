//! Functional counter-tree protected memory: counter-mode encryption,
//! per-block MACs, and a real Merkle counter tree with an on-chip root —
//! the baseline scheme of the paper over real bytes.

use super::dram::RawDram;
use super::{flip_bits, BlockCapture, FunctionalMemory, IntegrityError, MismatchCause};
use crate::counters::{Bump, SplitCounterBlock};
use crate::tree::TreeGeometry;
use crate::SchemeKind;
use std::collections::BTreeMap;
use tnpu_crypto::ctr::CtrMode;
use tnpu_crypto::mac::{BlockMac, MacTag};
use tnpu_crypto::sha256::Sha256;
use tnpu_crypto::Key128;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Functional counter-mode + integrity-tree memory.
///
/// All state except [`root`] is conceptually *untrusted* (DRAM-resident):
/// the ciphertext, the MACs, the per-block counters, and the tree-node
/// contents. The attack hooks mutate that state directly; reads verify the
/// full path to the trusted root.
///
/// [`root`]: CounterTreeMemory::read_block
#[derive(Debug)]
pub struct CounterTreeMemory {
    dram: RawDram,
    macs: BTreeMap<u64, MacTag>,
    /// DRAM-resident SC-64 split-counter blocks, one per 64 data blocks.
    counters: BTreeMap<u64, SplitCounterBlock>,
    /// Tree-node contents: `(level, node) -> [child hash; arity]`.
    nodes: BTreeMap<(u32, u64), Vec<[u8; 32]>>,
    /// The on-chip root hash — the only trusted state.
    root: [u8; 32],
    geometry: TreeGeometry,
    counters_per_block: u64,
    ctr: CtrMode,
    mac: BlockMac,
    /// Retained for epoch re-keying (the exhaustion sweep).
    master: Key128,
}

/// Probe width of the failure-path diagnosis (the counter plays the
/// version's role in this scheme).
const COUNTER_PROBE_WINDOW: u64 = 8;

impl CounterTreeMemory {
    /// Create a protected memory covering `data_blocks` 64 B blocks.
    ///
    /// # Panics
    ///
    /// Panics if `data_blocks` is zero.
    #[must_use]
    pub fn new(master: Key128, data_blocks: u64) -> Self {
        assert!(data_blocks > 0, "must cover at least one block");
        let counters_per_block = 64;
        let counter_blocks = data_blocks.div_ceil(counters_per_block);
        let geometry = TreeGeometry::new(counter_blocks, 64);
        let mut mac_label = b"tree-mac".to_vec();
        mac_label.extend_from_slice(&master.0);
        let mut ctr_label = b"tree-ctr".to_vec();
        ctr_label.extend_from_slice(&master.0);
        CounterTreeMemory {
            dram: RawDram::new(),
            macs: BTreeMap::new(),
            counters: BTreeMap::new(),
            nodes: BTreeMap::new(),
            root: [0; 32],
            geometry,
            counters_per_block,
            ctr: CtrMode::new(Key128::derive(&ctr_label)),
            mac: BlockMac::new(Key128::derive(&mac_label)),
            master,
        }
    }

    /// Classify a MAC mismatch (failure path only). The tree has already
    /// verified the counter path, so most failures are content tampering —
    /// but a spliced pair still reads as an address mismatch, and a pair
    /// valid under a nearby counter as a (tree-escaped) replay.
    fn diagnose(
        &self,
        addr: Addr,
        counter: u64,
        ct: &[u8; BLOCK_SIZE],
        tag: MacTag,
    ) -> MismatchCause {
        for delta in 1..=COUNTER_PROBE_WINDOW {
            for c in [counter.checked_sub(delta), counter.checked_add(delta)]
                .into_iter()
                .flatten()
            {
                if self.mac.verify(addr.0, c, ct, tag) {
                    return MismatchCause::Version;
                }
            }
        }
        let unit = addr.block().0;
        for (&other, &other_tag) in &self.macs {
            if other == unit || other_tag != tag {
                continue;
            }
            if let Some(other_ct) = self.dram.read_block(Addr(other * BLOCK_SIZE as u64)) {
                if other_ct == *ct {
                    return MismatchCause::Address;
                }
            }
        }
        MismatchCause::Content
    }

    fn counter_block_of(&self, block: u64) -> u64 {
        block / self.counters_per_block
    }

    /// Hash of a counter block's current (untrusted) serialized contents.
    fn counter_block_hash(&self, counter_block: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        let bytes = self.counters.get(&counter_block).map_or_else(
            || SplitCounterBlock::new().to_bytes(),
            SplitCounterBlock::to_bytes,
        );
        h.update(&bytes);
        h.finalize()
    }

    /// Effective counter of a data block, if its counter block exists.
    #[must_use]
    pub fn counter_of(&self, addr: Addr) -> Option<u64> {
        let block = addr.block().0;
        let cb = self.counter_block_of(block);
        let slot = (block % self.counters_per_block) as usize;
        self.counters.get(&cb).map(|s| s.counter(slot))
    }

    fn node_hash(node: &[[u8; 32]]) -> [u8; 32] {
        let mut h = Sha256::new();
        for child in node {
            h.update(child);
        }
        h.finalize()
    }

    /// Re-hash the path from `counter_block` to the root after a counter
    /// update (what the hardware does on a verified counter write).
    fn update_path(&mut self, counter_block: u64) {
        let arity = self.geometry.arity();
        let mut child_hash = self.counter_block_hash(counter_block);
        let mut child_idx = counter_block;
        for level in 1..=self.geometry.root_level() {
            let node_idx = child_idx / arity;
            let slot = (child_idx % arity) as usize;
            let node = self
                .nodes
                .entry((level, node_idx))
                .or_insert_with(|| vec![[0; 32]; arity as usize]);
            node[slot] = child_hash;
            child_hash = Self::node_hash(node);
            child_idx = node_idx;
        }
        self.root = child_hash;
    }

    /// Verify the path from `counter_block` to the trusted root.
    fn verify_path(&self, counter_block: u64) -> Result<(), IntegrityError> {
        let arity = self.geometry.arity();
        let mut expected = self.counter_block_hash(counter_block);
        let mut child_idx = counter_block;
        for level in 1..=self.geometry.root_level() {
            let node_idx = child_idx / arity;
            let slot = (child_idx % arity) as usize;
            let node = self
                .nodes
                .get(&(level, node_idx))
                .ok_or(IntegrityError::TreeMismatch { level })?;
            if node[slot] != expected {
                return Err(IntegrityError::TreeMismatch { level });
            }
            expected = Self::node_hash(node);
            child_idx = node_idx;
        }
        if expected != self.root {
            return Err(IntegrityError::TreeMismatch {
                level: self.geometry.root_level(),
            });
        }
        Ok(())
    }

    /// Encrypt and store a block; the hardware bumps the block's SC-64
    /// minor counter and updates the tree path. If the minor overflows,
    /// every sibling block of the 4 KB page is decrypted under its old
    /// counter and re-encrypted under the new epoch — the real SC-64
    /// overflow procedure whose cost the timing engine charges.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 64 B aligned.
    pub fn write_block(&mut self, addr: Addr, plaintext: [u8; BLOCK_SIZE]) {
        assert_eq!(addr.block_offset(), 0, "unaligned write at {addr}");
        let block = addr.block().0;
        let cb = self.counter_block_of(block);
        let slot = (block % self.counters_per_block) as usize;
        let entry = self.counters.entry(cb).or_default();
        if entry.will_overflow(slot) {
            // Capture every sibling's plaintext under the *old* counters.
            let old = entry.clone();
            let base_block = cb * self.counters_per_block;
            let mut siblings: Vec<(u64, [u8; BLOCK_SIZE])> = Vec::new();
            for i in 0..self.counters_per_block {
                let sib = base_block + i;
                if sib == block {
                    continue;
                }
                let sib_addr = Addr(sib * BLOCK_SIZE as u64);
                if let Some(ct) = self.dram.read_block(sib_addr) {
                    let mut pt = ct;
                    self.ctr.apply(sib_addr.0, old.counter(i as usize), &mut pt);
                    siblings.push((sib, pt));
                }
            }
            // Bump into the new epoch and re-encrypt the page.
            let entry = self.counters.get_mut(&cb).expect("just inserted");
            let bumped = entry.bump(slot);
            debug_assert_eq!(bumped, Bump::Overflow);
            let epoch = entry.clone();
            for (sib, pt) in siblings {
                let sib_addr = Addr(sib * BLOCK_SIZE as u64);
                let sib_slot = (sib % self.counters_per_block) as usize;
                let counter = epoch.counter(sib_slot);
                let ct = self.ctr.encrypt(sib_addr.0, counter, &pt);
                let tag = self.mac.tag(sib_addr.0, counter, &ct);
                self.dram.write_block(sib_addr, ct);
                self.macs.insert(sib, tag);
            }
        } else {
            let bumped = entry.bump(slot);
            debug_assert_eq!(bumped, Bump::Minor);
        }
        let counter = self.counters[&cb].counter(slot);
        let ct = self.ctr.encrypt(addr.0, counter, &plaintext);
        let tag = self.mac.tag(addr.0, counter, &ct);
        self.dram.write_block(addr, ct);
        self.macs.insert(block, tag);
        self.update_path(cb);
    }

    /// Fetch, verify (tree then MAC) and decrypt a block.
    ///
    /// # Errors
    ///
    /// * [`IntegrityError::NotWritten`] — nothing stored at `addr`.
    /// * [`IntegrityError::TreeMismatch`] — the counter path does not hash
    ///   to the trusted root (counter tampering or replay).
    /// * [`IntegrityError::MacMismatch`] — ciphertext or MAC tampering.
    pub fn read_block(&self, addr: Addr) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        let block = addr.block().0;
        let ct = self
            .dram
            .read_block(addr)
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })?;
        let counter = self
            .counter_of(addr)
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })?;
        self.verify_path(self.counter_block_of(block))?;
        let tag = self
            .macs
            .get(&block)
            .copied()
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })?;
        if !self.mac.verify(addr.0, counter, &ct, tag) {
            return Err(IntegrityError::MacMismatch {
                addr: addr.0,
                cause: self.diagnose(addr, counter, &ct, tag),
            });
        }
        let mut pt = ct;
        self.ctr.apply(addr.0, counter, &mut pt);
        Ok(pt)
    }

    /// The untrusted DRAM — attack hook.
    pub fn dram_mut(&mut self) -> &mut RawDram {
        &mut self.dram
    }

    /// The untrusted DRAM, read-only.
    #[must_use]
    pub fn dram(&self) -> &RawDram {
        &self.dram
    }

    /// Overwrite a block's DRAM-resident minor counter — attack hook. The
    /// tree is *not* updated (the attacker cannot recompute the protected
    /// root).
    pub fn tamper_counter(&mut self, addr: Addr, value: u64) {
        let block = addr.block().0;
        let cb = self.counter_block_of(block);
        let slot = (block % self.counters_per_block) as usize;
        self.counters
            .entry(cb)
            .or_default()
            .set_minor_raw(slot, (value % 128) as u8);
    }

    /// Snapshot the full untrusted state of a block: ciphertext, MAC, and
    /// its whole SC-64 counter block — everything a physical attacker can
    /// capture from DRAM.
    #[must_use]
    pub fn snapshot(&self, addr: Addr) -> Option<TreeSnapshot> {
        let block = addr.block().0;
        let cb = self.counter_block_of(block);
        Some(TreeSnapshot {
            ciphertext: self.dram.read_block(addr)?,
            mac: self.macs.get(&block).copied()?,
            counter_block: self.counters.get(&cb)?.clone(),
        })
    }

    /// Restore a snapshot (replay attack). The tree path is *not* restored:
    /// the root stayed on-chip while the victim kept writing, so the stale
    /// counter block no longer hashes to it.
    pub fn restore(&mut self, addr: Addr, snapshot: TreeSnapshot) {
        let block = addr.block().0;
        let cb = self.counter_block_of(block);
        self.dram.write_block(addr, snapshot.ciphertext);
        self.macs.insert(block, snapshot.mac);
        self.counters.insert(cb, snapshot.counter_block);
    }
}

impl FunctionalMemory for CounterTreeMemory {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::TreeBased
    }

    fn write_block(&mut self, addr: Addr, _version: u64, plaintext: [u8; BLOCK_SIZE]) {
        // The hardware manages its own counters; the software version
        // number has no role in this scheme.
        CounterTreeMemory::write_block(self, addr, plaintext);
    }

    fn read_block(&self, addr: Addr, _version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        CounterTreeMemory::read_block(self, addr)
    }

    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool {
        flip_bits(&mut self.dram, addr, bits)
    }

    fn capture_block(&self, addr: Addr) -> Option<BlockCapture> {
        let snap = self.snapshot(addr)?;
        Some(BlockCapture {
            bytes: snap.ciphertext,
            mac: Some(snap.mac),
            counters: Some(snap.counter_block),
        })
    }

    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        let (Some(mac), Some(counters)) = (capture.mac, capture.counters.clone()) else {
            return false;
        };
        self.restore(
            addr,
            TreeSnapshot {
                ciphertext: capture.bytes,
                mac,
                counter_block: counters,
            },
        );
        true
    }

    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        // Roll back the DRAM-resident counter block and MAC only; the
        // ciphertext stays current. The tree path is not (and cannot be)
        // recomputed by the attacker — the root stayed on-chip.
        let (Some(mac), Some(counters)) = (capture.mac, capture.counters.clone()) else {
            return false;
        };
        let block = addr.block().0;
        self.macs.insert(block, mac);
        self.counters.insert(self.counter_block_of(block), counters);
        true
    }

    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool {
        // Physical relocation: ciphertext and MAC move; the counters are
        // whatever already covers the victim address.
        let Some(ct) = self.dram.read_block(donor) else {
            return false;
        };
        let Some(mac) = self.macs.get(&donor.block().0).copied() else {
            return false;
        };
        self.dram.write_block(victim, ct);
        self.macs.insert(victim.block().0, mac);
        true
    }

    fn substitute_mac(&mut self, victim: Addr, donor: Addr) -> bool {
        let Some(mac) = self.macs.get(&donor.block().0).copied() else {
            return false;
        };
        self.macs.insert(victim.block().0, mac);
        true
    }

    fn dram_contains(&self, needle: &[u8]) -> bool {
        self.dram.contains_bytes(needle)
    }

    fn rekey(&mut self, epoch: u64) -> bool {
        let mut label = b"tree-epoch".to_vec();
        label.extend_from_slice(&epoch.to_le_bytes());
        label.extend_from_slice(&self.master.0);
        let epoch_master = Key128::derive(&label);
        let mut mac_label = b"tree-mac".to_vec();
        mac_label.extend_from_slice(&epoch_master.0);
        let mut ctr_label = b"tree-ctr".to_vec();
        ctr_label.extend_from_slice(&epoch_master.0);
        self.ctr = CtrMode::new(Key128::derive(&ctr_label));
        self.mac = BlockMac::new(Key128::derive(&mac_label));
        true
    }
}

/// Everything a physical attacker can capture about one block: the
/// ciphertext, its MAC, and the covering SC-64 counter block.
#[derive(Debug, Clone)]
pub struct TreeSnapshot {
    /// The stored ciphertext.
    pub ciphertext: [u8; BLOCK_SIZE],
    /// The stored MAC.
    pub mac: MacTag,
    /// The covering counter block's raw state.
    pub counter_block: SplitCounterBlock,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> CounterTreeMemory {
        // Cover 64 Ki blocks (4 MB): counter blocks = 1 Ki, depth 3.
        CounterTreeMemory::new(Key128::derive(b"tree-test"), 1 << 16)
    }

    #[test]
    fn roundtrip() {
        let mut m = mem();
        let data: [u8; 64] = std::array::from_fn(|i| (i * 3) as u8);
        m.write_block(Addr(0x400), data);
        assert_eq!(m.read_block(Addr(0x400)).expect("verifies"), data);
    }

    #[test]
    fn updates_are_readable() {
        let mut m = mem();
        m.write_block(Addr(0), [1u8; 64]);
        m.write_block(Addr(0), [2u8; 64]);
        assert_eq!(m.read_block(Addr(0)).expect("verifies"), [2u8; 64]);
    }

    #[test]
    fn confidentiality() {
        let mut m = mem();
        let mut secret = [0u8; 64];
        secret[..12].copy_from_slice(b"WEIGHTS-v1.0");
        m.write_block(Addr(0), secret);
        assert!(!m.dram().contains_bytes(b"WEIGHTS-v1.0"));
    }

    #[test]
    fn ciphertext_tampering_detected() {
        let mut m = mem();
        m.write_block(Addr(0), [1u8; 64]);
        m.dram_mut().block_mut(Addr(0)).expect("present")[10] ^= 0x80;
        assert_eq!(
            m.read_block(Addr(0)),
            Err(IntegrityError::MacMismatch {
                addr: 0,
                cause: MismatchCause::Content
            })
        );
    }

    #[test]
    fn counter_tampering_detected_by_tree() {
        let mut m = mem();
        m.write_block(Addr(0), [1u8; 64]);
        m.tamper_counter(Addr(0), 99);
        match m.read_block(Addr(0)) {
            Err(IntegrityError::TreeMismatch { level: 1 }) => {}
            other => panic!("expected tree mismatch at level 1, got {other:?}"),
        }
    }

    #[test]
    fn full_replay_detected_by_tree() {
        // Attacker replays ciphertext + MAC + counter together. The MAC
        // verifies against the stale counter, but the tree root does not.
        let mut m = mem();
        m.write_block(Addr(0), [1u8; 64]);
        let old = m.snapshot(Addr(0)).expect("present");
        m.write_block(Addr(0), [2u8; 64]);
        m.restore(Addr(0), old);
        assert!(matches!(
            m.read_block(Addr(0)),
            Err(IntegrityError::TreeMismatch { .. })
        ));
    }

    #[test]
    fn replay_of_sibling_does_not_break_others() {
        // Tampering with one block must not make *other* verified blocks
        // unreadable before the tamper is rolled forward... it does make
        // the shared counter-block path fail for siblings — the tree is
        // sound, not sparing. Distinct counter blocks stay independent.
        let mut m = mem();
        m.write_block(Addr(0), [1u8; 64]);
        // Block in a different counter block (64 blocks * 64 B = 4 KB away).
        m.write_block(Addr(4096), [2u8; 64]);
        m.tamper_counter(Addr(0), 5);
        assert!(m.read_block(Addr(0)).is_err());
        assert_eq!(m.read_block(Addr(4096)).expect("independent"), [2u8; 64]);
    }

    #[test]
    fn counters_increment_monotonically() {
        let mut m = mem();
        m.write_block(Addr(0), [0u8; 64]);
        let c1 = m.counter_of(Addr(0)).expect("present");
        m.write_block(Addr(0), [0u8; 64]);
        let c2 = m.counter_of(Addr(0)).expect("present");
        assert_eq!(c2, c1 + 1);
    }

    #[test]
    fn minor_overflow_reencrypts_the_page_transparently() {
        // 128 writes to one block overflow its minor counter; the sibling
        // blocks must remain readable (they were re-encrypted under the
        // new epoch) and the writing block keeps verifying.
        let mut m = mem();
        m.write_block(Addr(64), [0xabu8; 64]); // sibling in the same page
        for i in 0..130u64 {
            m.write_block(Addr(0), [i as u8; 64]);
        }
        assert!(
            m.counter_of(Addr(0)).expect("present") > 127,
            "epoch advanced"
        );
        assert_eq!(m.read_block(Addr(0)).expect("verifies"), [129u8; 64]);
        assert_eq!(
            m.read_block(Addr(64))
                .expect("sibling re-encrypted and verifies"),
            [0xabu8; 64]
        );
    }

    #[test]
    fn reencryption_changes_ciphertext_for_same_data() {
        // Counter-mode property the paper relies on: every write uses a
        // fresh pad even for identical plaintext.
        let mut m = mem();
        m.write_block(Addr(0), [7u8; 64]);
        let ct1 = m.dram().read_block(Addr(0)).expect("present");
        m.write_block(Addr(0), [7u8; 64]);
        let ct2 = m.dram().read_block(Addr(0)).expect("present");
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn never_written() {
        let m = mem();
        assert!(matches!(
            m.read_block(Addr(0)),
            Err(IntegrityError::NotWritten { .. })
        ));
    }

    #[test]
    fn single_counter_block_memory_works() {
        let mut m = CounterTreeMemory::new(Key128::derive(b"tiny"), 4);
        m.write_block(Addr(0), [1u8; 64]);
        assert_eq!(m.read_block(Addr(0)).expect("verifies"), [1u8; 64]);
        m.tamper_counter(Addr(0), 3);
        assert!(m.read_block(Addr(0)).is_err());
    }
}
