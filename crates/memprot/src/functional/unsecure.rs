//! Functional unprotected memory — plaintext straight to DRAM.
//!
//! The normalization baseline of every figure: no encryption, no MACs, no
//! tree. Every attack surface is wide open; the adversary harness uses it
//! to show what "detection" even means — here tampering lands directly in
//! the plaintext the NPU computes on.

use super::{flip_bits, BlockCapture, FunctionalMemory, IntegrityError, RawDram};
use crate::SchemeKind;
use tnpu_sim::{Addr, BLOCK_SIZE};

/// Unprotected functional memory: stores plaintext as-is.
#[derive(Debug, Default)]
pub struct UnsecureMemory {
    dram: RawDram,
}

impl UnsecureMemory {
    /// Empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The DRAM — for unprotected memory this *is* the plaintext store.
    #[must_use]
    pub fn dram(&self) -> &RawDram {
        &self.dram
    }

    /// The DRAM, writable — attack hook.
    pub fn dram_mut(&mut self) -> &mut RawDram {
        &mut self.dram
    }
}

impl FunctionalMemory for UnsecureMemory {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::Unsecure
    }

    fn write_block(&mut self, addr: Addr, _version: u64, plaintext: [u8; BLOCK_SIZE]) {
        self.dram.write_block(addr, plaintext);
    }

    fn read_block(&self, addr: Addr, _version: u64) -> Result<[u8; BLOCK_SIZE], IntegrityError> {
        self.dram
            .read_block(addr)
            .ok_or(IntegrityError::NotWritten { addr: addr.0 })
    }

    fn tamper_bits(&mut self, addr: Addr, bits: &[u16]) -> bool {
        flip_bits(&mut self.dram, addr, bits)
    }

    fn capture_block(&self, addr: Addr) -> Option<BlockCapture> {
        Some(BlockCapture {
            bytes: self.dram.read_block(addr)?,
            mac: None,
            counters: None,
        })
    }

    fn restore_block(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        self.dram.write_block(addr, capture.bytes);
        true
    }

    fn rollback_metadata(&mut self, addr: Addr, capture: &BlockCapture) -> bool {
        // No metadata exists; the strongest rollback is the data itself.
        self.dram.write_block(addr, capture.bytes);
        true
    }

    fn splice_block(&mut self, donor: Addr, victim: Addr) -> bool {
        let Some(bytes) = self.dram.read_block(donor) else {
            return false;
        };
        self.dram.write_block(victim, bytes);
        true
    }

    fn substitute_mac(&mut self, _victim: Addr, _donor: Addr) -> bool {
        false // no MACs to substitute
    }

    fn dram_contains(&self, needle: &[u8]) -> bool {
        self.dram.contains_bytes(needle)
    }

    fn rekey(&mut self, _epoch: u64) -> bool {
        false // plaintext store: no keys to rotate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> UnsecureMemory {
        let mut m = UnsecureMemory::new();
        m.write_block(Addr(0), 1, [7u8; 64]);
        m
    }

    #[test]
    fn plaintext_is_exposed_in_dram() {
        let mut m = UnsecureMemory::new();
        let mut data = [0u8; 64];
        data[..6].copy_from_slice(b"SECRET");
        m.write_block(Addr(0), 1, data);
        assert!(m.dram_contains(b"SECRET"), "nothing hides the plaintext");
    }

    #[test]
    fn version_is_ignored() {
        let m = mem();
        assert_eq!(m.read_block(Addr(0), 1).expect("stored"), [7u8; 64]);
        assert_eq!(m.read_block(Addr(0), 99).expect("no binding"), [7u8; 64]);
    }

    #[test]
    fn tampering_lands_in_plaintext_silently() {
        let mut m = mem();
        assert!(m.tamper_bits(Addr(0), &[0]));
        assert_eq!(m.read_block(Addr(0), 1).expect("no check")[0], 6);
    }

    #[test]
    fn replay_restores_stale_plaintext() {
        let mut m = mem();
        let old = m.capture_block(Addr(0)).expect("stored");
        m.write_block(Addr(0), 2, [8u8; 64]);
        assert!(m.restore_block(Addr(0), &old));
        assert_eq!(m.read_block(Addr(0), 2).expect("no check"), [7u8; 64]);
    }

    #[test]
    fn mac_substitution_is_not_applicable() {
        let mut m = mem();
        m.write_block(Addr(64), 1, [9u8; 64]);
        assert!(!m.substitute_mac(Addr(0), Addr(64)));
    }
}
