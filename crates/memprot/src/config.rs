//! Configuration of the memory-protection engines, with the paper's
//! evaluation parameters as defaults (§V-A).

use tnpu_sim::cache::CacheConfig;
use tnpu_sim::Cycles;

/// All parameters of a protection engine.
///
/// Defaults reproduce the paper's methodology:
///
/// * 4 KB counter cache, 4 KB hash cache, 8 KB MAC cache — all 64 B lines,
///   8-way.
/// * SC-64 split counters (64 counters per 64 B counter block) and a 64-ary
///   counter tree.
/// * Counter-mode OTP latency 10 + 1 cycles; AES-XTS latency 13 cycles.
/// * Whole-DRAM coverage for the baseline tree; a 128 MB fully-protected
///   region for TNPU's version table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectionConfig {
    /// Bytes of DRAM covered by the baseline counter tree.
    pub dram_size: u64,
    /// Size of the fully-protected region (TNPU's tree-protected island).
    pub fully_protected_size: u64,
    /// Counter cache geometry.
    pub counter_cache: CacheConfig,
    /// Hash (tree-node) cache geometry.
    pub hash_cache: CacheConfig,
    /// MAC cache geometry.
    pub mac_cache: CacheConfig,
    /// Arity of the counter tree.
    pub tree_arity: u64,
    /// Use the VAULT-style variable-arity tree (paper related-work ref 18): wide
    /// near the leaves, narrowing towards the root. Overrides `tree_arity`
    /// for levels above the first.
    pub vault_tree: bool,
    /// Data blocks covered per counter block (SC-64: 64).
    pub counters_per_block: u64,
    /// Writes a single data block sustains before its minor counter
    /// overflows (7-bit minor counters: 128).
    pub minor_counter_limit: u32,
    /// Counter-mode pad generation latency (10 cycles AES + 1 cycle XOR).
    pub otp_latency: Cycles,
    /// AES-XTS latency (10 cycles for two parallel AES + 3 cycles for the
    /// additions/XOR).
    pub xts_latency: Cycles,
}

impl ProtectionConfig {
    /// The paper's evaluation configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        ProtectionConfig {
            dram_size: 4 << 30,
            fully_protected_size: 128 << 20,
            counter_cache: CacheConfig::new("counter", 4 << 10, 8, 64),
            hash_cache: CacheConfig::new("hash", 4 << 10, 8, 64),
            mac_cache: CacheConfig::new("mac", 8 << 10, 8, 64),
            tree_arity: 64,
            vault_tree: false,
            counters_per_block: 64,
            minor_counter_limit: 128,
            otp_latency: Cycles(11),
            xts_latency: Cycles(13),
        }
    }

    /// A configuration with caches scaled by `factor` (for sensitivity
    /// sweeps; `factor` must be a power of two so geometry stays valid).
    #[must_use]
    pub fn with_cache_scale(mut self, factor: usize) -> Self {
        assert!(
            factor.is_power_of_two(),
            "cache scale must be a power of two"
        );
        self.counter_cache =
            CacheConfig::new("counter", self.counter_cache.capacity * factor, 8, 64);
        self.hash_cache = CacheConfig::new("hash", self.hash_cache.capacity * factor, 8, 64);
        self.mac_cache = CacheConfig::new("mac", self.mac_cache.capacity * factor, 8, 64);
        self
    }
}

impl Default for ProtectionConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_methodology() {
        let c = ProtectionConfig::paper_default();
        assert_eq!(c.counter_cache.capacity, 4096);
        assert_eq!(c.hash_cache.capacity, 4096);
        assert_eq!(c.mac_cache.capacity, 8192);
        assert_eq!(c.tree_arity, 64);
        assert_eq!(c.counters_per_block, 64);
        assert_eq!(c.otp_latency, Cycles(11));
        assert_eq!(c.xts_latency, Cycles(13));
        assert_eq!(c.fully_protected_size, 128 << 20);
    }

    #[test]
    fn vault_off_by_default() {
        assert!(!ProtectionConfig::paper_default().vault_tree);
    }

    #[test]
    fn cache_scaling() {
        let c = ProtectionConfig::paper_default().with_cache_scale(2);
        assert_eq!(c.counter_cache.capacity, 8192);
        assert_eq!(c.mac_cache.capacity, 16384);
    }
}
