//! The baseline engine: counter-mode encryption + per-block MACs + SC-64
//! split-counter integrity tree (§II-B, §III-B).
//!
//! This is the "naïve adoption of CPU-oriented memory protection" the paper
//! measures in Figs. 4/5 and compares against in Figs. 14–17. Every 64 B
//! data block has a counter (64 per counter block), the counters are
//! protected by a 64-ary hash tree whose root stays on-chip, and recently
//! used counters/tree nodes/MACs are cached in small metadata caches.
//!
//! ## Timing model
//!
//! * Counter-cache hit: free (the OTP is precomputed while data is in
//!   flight).
//! * Counter-cache miss: one independent DRAM access for the counter block,
//!   then a tree walk — each tree level that also misses in the hash cache
//!   is a *serial* DRAM access (child verification depends on the parent).
//!   The walk stops at the first cached (trusted) level or at the root.
//! * Dirty counter-block eviction: counter write-back traffic plus a
//!   write-touch of the parent tree node (lazy tree update on eviction,
//!   Bonsai-mtree style); dirty tree nodes cascade one level up when they
//!   are themselves evicted.
//! * MAC fetch/write-back through the MAC cache, overlappable.
//! * Minor-counter overflow (128 writes to one block) forces a page
//!   re-encryption burst (64 blocks read + written back).

use crate::config::ProtectionConfig;
use crate::engine::{AccessCost, EngineStats, ProtectionEngine};
use crate::layout::{Layout, COUNTER_BASE, MACS_PER_BLOCK, TREE_BASE, TREE_LEVEL_STRIDE};
use crate::span::meta_spans;
use crate::tree::TreeGeometry;
use crate::SchemeKind;
use std::collections::BTreeMap;
use tnpu_sim::cache::{AccessKind, Cache};
use tnpu_sim::stats::{EventCounters, TrafficStats};
use tnpu_sim::{Addr, BlockAddr, BlockRun, Cycles, BLOCK_SIZE};

/// Blocks per allocation page of the overflow-tracking table: write runs
/// look the page up once and bump a flat slice, instead of paying one map
/// search per data block.
const OVERFLOW_PAGE: u64 = 1024;

/// Counter-mode + integrity-tree engine (the paper's *Baseline*).
#[derive(Debug)]
pub struct TreeBasedEngine {
    config: ProtectionConfig,
    layout: Layout,
    geometry: TreeGeometry,
    counter_cache: Cache,
    hash_cache: Cache,
    mac_cache: Cache,
    /// Per-data-block write counts for minor-counter overflow modelling,
    /// paged by [`OVERFLOW_PAGE`] blocks (sparse: only written pages
    /// allocate).
    write_counts: BTreeMap<u64, Box<[u32; OVERFLOW_PAGE as usize]>>,
    traffic: TrafficStats,
    events: EventCounters,
}

impl TreeBasedEngine {
    /// Build the engine; the tree covers `config.dram_size` bytes.
    #[must_use]
    pub fn new(config: ProtectionConfig) -> Self {
        let layout = Layout::new(config.dram_size, config.counters_per_block);
        let geometry = if config.vault_tree {
            TreeGeometry::vault(layout.counter_blocks())
        } else {
            TreeGeometry::new(layout.counter_blocks(), config.tree_arity)
        };
        TreeBasedEngine {
            counter_cache: Cache::new(config.counter_cache.clone()),
            hash_cache: Cache::new(config.hash_cache.clone()),
            mac_cache: Cache::new(config.mac_cache.clone()),
            layout,
            geometry,
            config,
            write_counts: BTreeMap::new(),
            traffic: TrafficStats::default(),
            events: EventCounters::default(),
        }
    }

    /// The tree geometry (exposed for storage-overhead reporting).
    #[must_use]
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geometry
    }

    fn clamp_block(&self, addr: Addr) -> BlockAddr {
        let block = addr.block();
        // A hard assert, not debug_assert: in release builds an
        // out-of-range address would otherwise silently alias (modulo)
        // into the protected region and charge the wrong metadata blocks.
        assert!(
            self.layout.contains_block(block),
            "access at {addr} outside protected region"
        );
        BlockAddr(block.0 % self.layout.data_blocks())
    }

    /// Decode a counter-window address back to its counter index.
    fn counter_index_of_addr(addr: Addr) -> u64 {
        debug_assert!(addr.0 >= COUNTER_BASE && addr.0 < TREE_BASE);
        (addr.0 - COUNTER_BASE) / BLOCK_SIZE as u64
    }

    /// Decode a tree-window address back to `(level, node)`.
    fn tree_node_of_addr(addr: Addr) -> (u32, u64) {
        debug_assert!(addr.0 >= TREE_BASE);
        let off = addr.0 - TREE_BASE;
        let level = (off / TREE_LEVEL_STRIDE) as u32;
        let node = (off % TREE_LEVEL_STRIDE) / BLOCK_SIZE as u64;
        (level, node)
    }

    /// Write-touch the parent tree node of `level`/`node` (lazy tree update
    /// triggered by a dirty eviction at the level below). Cascades if the
    /// touch itself evicts a dirty node.
    fn touch_parent(&mut self, mut level: u32, mut node: u64, cost: &mut AccessCost) {
        loop {
            node /= self.geometry.arity_at(level);
            level += 1;
            if level >= self.geometry.root_level() {
                // Parent is the on-chip root: free, end of cascade.
                return;
            }
            let addr = self.layout.tree_node_addr(level, node);
            let outcome = self.hash_cache.access(addr, AccessKind::Write);
            if outcome.is_miss() {
                // Read-modify-write of the node.
                self.traffic.tree += BLOCK_SIZE as u64;
                cost.meta_bytes += BLOCK_SIZE as u64;
                cost.independent_misses += 1;
            }
            match outcome.writeback() {
                Some(victim) => {
                    self.traffic.tree += BLOCK_SIZE as u64;
                    cost.meta_bytes += BLOCK_SIZE as u64;
                    let (vlevel, vnode) = Self::tree_node_of_addr(victim);
                    // Continue cascading from the evicted node's position.
                    level = vlevel;
                    node = vnode;
                }
                None => return,
            }
        }
    }

    /// Handle a dirty counter-block eviction: write-back traffic plus a
    /// lazy update of the parent tree node.
    fn evict_counter(&mut self, victim: Addr, cost: &mut AccessCost) {
        self.traffic.counter += BLOCK_SIZE as u64;
        cost.meta_bytes += BLOCK_SIZE as u64;
        let counter_index = Self::counter_index_of_addr(victim);
        self.events.add("counter_writeback", 1);
        self.touch_parent(0, counter_index, cost);
    }

    /// Fetch + verify the counter block for `block` after a counter-cache
    /// miss. The counter fetch is *serial*: the OTP cannot be generated —
    /// and therefore the data cannot be decrypted — until the counter
    /// arrives and is verified ("a miss in the counter cache causes a
    /// significant delay in decrypting the data from the memory", §II-B),
    /// and every tree level that misses in the hash cache adds another
    /// dependent fetch.
    fn counter_miss(&mut self, counter_index: u64, cost: &mut AccessCost) {
        self.traffic.counter += BLOCK_SIZE as u64;
        cost.meta_bytes += BLOCK_SIZE as u64;
        cost.serial_misses += 1;
        self.events.add("tree_walk", 1);
        let path: Vec<(u32, u64)> = self.geometry.walk(counter_index).collect();
        for (level, node) in path {
            let addr = self.layout.tree_node_addr(level, node);
            let outcome = self.hash_cache.access(addr, AccessKind::Read);
            if let Some(victim) = outcome.writeback() {
                self.traffic.tree += BLOCK_SIZE as u64;
                cost.meta_bytes += BLOCK_SIZE as u64;
                let (vlevel, vnode) = Self::tree_node_of_addr(victim);
                self.touch_parent(vlevel, vnode, cost);
            }
            if outcome.is_hit() {
                // Reached a trusted (cached) ancestor: verified.
                return;
            }
            self.traffic.tree += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
            cost.serial_misses += 1;
            self.events.add("tree_node_fetch", 1);
        }
        // Walked all in-memory levels; final check is against the on-chip
        // root (free).
    }

    /// MAC-cache access shared by reads and writes.
    fn mac_access(&mut self, block: BlockAddr, kind: AccessKind, cost: &mut AccessCost) {
        let outcome = self.mac_cache.access(self.layout.mac_addr(block), kind);
        if outcome.is_miss() && kind == AccessKind::Read {
            // Read misses fetch the MAC block to verify. Write misses do
            // NOT fetch: streaming stores fill whole MAC blocks through a
            // write-combining buffer, so only the eventual write-back
            // moves data (the paper's MAC cache "reduces MAC read and
            // write traffic by exploiting the locality", SEAL [36]).
            self.traffic.mac += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
            cost.independent_misses += 1;
        }
        if outcome.writeback().is_some() {
            self.traffic.mac += BLOCK_SIZE as u64;
            cost.meta_bytes += BLOCK_SIZE as u64;
        }
    }

    /// Track minor-counter overflow for a written block; a 7-bit minor
    /// counter overflows after `minor_counter_limit` writes, forcing the
    /// whole 4 KB counter-block page to be re-encrypted under the bumped
    /// major counter.
    fn track_minor_overflow(&mut self, block: BlockAddr, cost: &mut AccessCost) {
        self.track_overflow_run(
            BlockRun {
                first: block,
                len: 1,
            },
            cost,
        );
    }

    /// [`Self::track_minor_overflow`] over a whole run: one table-page
    /// lookup per [`OVERFLOW_PAGE`] covered blocks, then flat slice
    /// increments. Overflow charges are per-block additive and the counts
    /// land in the same pages, so this is state-identical to the per-block
    /// loop in any order.
    fn track_overflow_run(&mut self, run: BlockRun, cost: &mut AccessCost) {
        let limit = self.config.minor_counter_limit;
        let reencrypted = self.config.counters_per_block;
        for span in meta_spans(run.first.0, run.len, OVERFLOW_PAGE) {
            let page = self
                .write_counts
                .entry(span.index)
                .or_insert_with(|| Box::new([0u32; OVERFLOW_PAGE as usize]));
            let offset =
                (run.first.0.max(span.index * OVERFLOW_PAGE) - span.index * OVERFLOW_PAGE) as usize;
            let mut overflows = 0u64;
            for count in &mut page[offset..offset + span.covered as usize] {
                *count += 1;
                if *count >= limit {
                    *count = 0;
                    overflows += 1;
                }
            }
            if overflows > 0 {
                self.events.add("minor_overflow", overflows);
                // Re-encrypt every data block sharing the counter block:
                // read + write each of them.
                let page_bytes = reencrypted * BLOCK_SIZE as u64 * 2;
                self.traffic.counter += page_bytes * overflows;
                cost.meta_bytes += page_bytes * overflows;
                cost.independent_misses += reencrypted * overflows;
            }
        }
    }

    /// Bounds-check a whole run, panicking exactly as the per-block path
    /// would at its first out-of-range block.
    fn check_run(&self, run: BlockRun) {
        let blocks = self.layout.data_blocks();
        if run.last().0 < blocks {
            return;
        }
        let bad = if run.first.0 >= blocks {
            run.first
        } else {
            BlockAddr(blocks)
        };
        panic!("access at {} outside protected region", bad.base());
    }

    /// Run-batched counter path: one counter-cache access per covered
    /// counter block (plus `covered - 1` bookkeeping hits), with the same
    /// eviction/miss handling the per-block path performs on the first
    /// access of each span — later accesses of a span are guaranteed hits,
    /// so they have no side effects to replicate.
    fn counter_run(&mut self, run: BlockRun, kind: AccessKind, cost: &mut AccessCost) {
        for span in meta_spans(run.first.0, run.len, self.layout.counters_per_block) {
            let outcome = self.counter_cache.access_repeated(
                self.layout.counter_index_addr(span.index),
                kind,
                span.covered,
            );
            if let Some(victim) = outcome.writeback() {
                self.evict_counter(victim, cost);
            }
            if outcome.is_miss() {
                self.counter_miss(span.index, cost);
            }
        }
    }

    /// Run-batched MAC path; effect logic mirrors [`Self::mac_access`]
    /// (which stays the single-block entry point).
    fn mac_run(&mut self, run: BlockRun, kind: AccessKind, cost: &mut AccessCost) {
        let first_index = run.first.0 / MACS_PER_BLOCK;
        let lines = run.last().0 / MACS_PER_BLOCK - first_index + 1;
        if lines == run.len {
            // Every covered MAC line is touched exactly once (gather-style
            // short runs): one consecutive-line batched sweep.
            let traffic = &mut self.traffic;
            self.mac_cache.access_many(
                self.layout.mac_index_addr(first_index),
                lines,
                kind,
                |outcome| {
                    if outcome.is_miss() && kind == AccessKind::Read {
                        traffic.mac += BLOCK_SIZE as u64;
                        cost.meta_bytes += BLOCK_SIZE as u64;
                        cost.independent_misses += 1;
                    }
                    if outcome.writeback().is_some() {
                        traffic.mac += BLOCK_SIZE as u64;
                        cost.meta_bytes += BLOCK_SIZE as u64;
                    }
                },
            );
            return;
        }
        for span in meta_spans(run.first.0, run.len, MACS_PER_BLOCK) {
            let outcome = self.mac_cache.access_repeated(
                self.layout.mac_index_addr(span.index),
                kind,
                span.covered,
            );
            if outcome.is_miss() && kind == AccessKind::Read {
                self.traffic.mac += BLOCK_SIZE as u64;
                cost.meta_bytes += BLOCK_SIZE as u64;
                cost.independent_misses += 1;
            }
            if outcome.writeback().is_some() {
                self.traffic.mac += BLOCK_SIZE as u64;
                cost.meta_bytes += BLOCK_SIZE as u64;
            }
        }
    }
}

impl ProtectionEngine for TreeBasedEngine {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::TreeBased
    }

    fn read_block(&mut self, addr: Addr, _version: u64) -> AccessCost {
        let block = self.clamp_block(addr);
        let mut cost = AccessCost::FREE;
        let outcome = self
            .counter_cache
            .access(self.layout.counter_addr(block), AccessKind::Read);
        if let Some(victim) = outcome.writeback() {
            self.evict_counter(victim, &mut cost);
        }
        if outcome.is_miss() {
            self.counter_miss(self.layout.counter_index(block), &mut cost);
        }
        self.mac_access(block, AccessKind::Read, &mut cost);
        cost
    }

    fn read_run(&mut self, run: BlockRun, _version: u64) -> AccessCost {
        if run.len == 0 {
            return AccessCost::FREE;
        }
        self.check_run(run);
        let mut cost = AccessCost::FREE;
        self.counter_run(run, AccessKind::Read, &mut cost);
        self.mac_run(run, AccessKind::Read, &mut cost);
        cost
    }

    fn write_run(&mut self, run: BlockRun, _version: u64) -> AccessCost {
        if run.len == 0 {
            return AccessCost::FREE;
        }
        self.check_run(run);
        let mut cost = AccessCost::FREE;
        self.counter_run(run, AccessKind::Write, &mut cost);
        // Overflow accounting is per data block but order-independent, so
        // the batched page-table walk is state-identical.
        self.track_overflow_run(run, &mut cost);
        self.mac_run(run, AccessKind::Write, &mut cost);
        cost
    }

    fn write_block(&mut self, addr: Addr, _version: u64) -> AccessCost {
        let block = self.clamp_block(addr);
        let mut cost = AccessCost::FREE;
        // The counter is incremented: the block must be resident (fetch &
        // verify on miss), and the line becomes dirty.
        let outcome = self
            .counter_cache
            .access(self.layout.counter_addr(block), AccessKind::Write);
        if let Some(victim) = outcome.writeback() {
            self.evict_counter(victim, &mut cost);
        }
        if outcome.is_miss() {
            self.counter_miss(self.layout.counter_index(block), &mut cost);
        }
        self.track_minor_overflow(block, &mut cost);
        self.mac_access(block, AccessKind::Write, &mut cost);
        cost
    }

    fn pipeline_latency(&self) -> Cycles {
        self.config.otp_latency
    }

    fn context_state_bytes(&self) -> u64 {
        // Per-context engine state: the on-chip tree root (32 B hash) and
        // the counter-mode encryption key (16 B).
        48
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            traffic: self.traffic,
            counter_cache: self.counter_cache.stats(),
            hash_cache: self.hash_cache.stats(),
            mac_cache: self.mac_cache.stats(),
            events: self.events.clone(),
        }
    }

    fn reset_stats(&mut self) {
        self.traffic = TrafficStats::default();
        self.events = EventCounters::default();
        self.counter_cache.reset_stats();
        self.hash_cache.reset_stats();
        self.mac_cache.reset_stats();
    }

    fn flush(&mut self) -> AccessCost {
        let mut cost = AccessCost::FREE;
        for (victims, bucket) in [
            (self.counter_cache.flush(), &mut self.traffic.counter),
            (self.hash_cache.flush(), &mut self.traffic.tree),
            (self.mac_cache.flush(), &mut self.traffic.mac),
        ] {
            let bytes = victims.len() as u64 * BLOCK_SIZE as u64;
            *bucket += bytes;
            cost.meta_bytes += bytes;
            cost.independent_misses += victims.len() as u64;
        }
        self.write_counts.clear();
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TreeBasedEngine {
        TreeBasedEngine::new(ProtectionConfig::paper_default())
    }

    #[test]
    fn first_read_misses_everywhere() {
        let mut e = engine();
        let cost = e.read_block(Addr(0), 0);
        // Counter fetch (serial: decryption waits on it) + full tree walk
        // (3 in-memory levels for 4 GB, serial) + MAC fetch (overlapped).
        assert_eq!(cost.independent_misses, 1); // MAC
        assert_eq!(cost.serial_misses, 4); // counter + tree levels 1..3
        assert_eq!(cost.meta_bytes, 64 * 5);
        let s = e.stats();
        assert_eq!(s.counter_cache.misses, 1);
        assert_eq!(s.mac_cache.misses, 1);
        assert_eq!(s.traffic.counter, 64);
        assert_eq!(s.traffic.tree, 64 * 3);
        assert_eq!(s.traffic.mac, 64);
    }

    #[test]
    fn spatial_locality_makes_next_blocks_free() {
        let mut e = engine();
        e.read_block(Addr(0), 0);
        // Blocks 1..7 share the MAC block and the counter block.
        for i in 1..8u64 {
            let cost = e.read_block(Addr(i * 64), 0);
            assert_eq!(cost, AccessCost::FREE, "block {i}");
        }
        // Block 8: new MAC block, same counter block.
        let cost = e.read_block(Addr(8 * 64), 0);
        assert_eq!(cost.independent_misses, 1);
        assert_eq!(cost.serial_misses, 0);
    }

    #[test]
    fn second_counter_block_walk_stops_at_cached_level1() {
        let mut e = engine();
        e.read_block(Addr(0), 0);
        // Block 64 uses counter block 1, whose level-1 ancestor (node 0) is
        // already in the hash cache: serial counter fetch but no tree walk.
        let cost = e.read_block(Addr(64 * 64), 0);
        assert_eq!(cost.serial_misses, 1); // the counter fetch itself
        assert_eq!(cost.independent_misses, 1); // mac
    }

    #[test]
    fn writes_dirty_counters_and_cause_writebacks() {
        let mut e = engine();
        // Touch enough distinct counter blocks mapping to the same set to
        // force dirty evictions. Counter cache: 4 KB, 8-way, 64 sets? no:
        // 4096/(8*64) = 8 sets. Counter block stride between same-set
        // conflicts = 8 blocks. Write 9 counter-block-aligned regions.
        for i in 0..9u64 {
            // Each i touches a distinct counter block in the same set:
            // data stride = 8 counter blocks apart * 64 data blocks * 64 B.
            let addr = Addr(i * 8 * 64 * 64 * 64);
            e.write_block(addr, 0);
        }
        let s = e.stats();
        assert!(s.events.get("counter_writeback") >= 1, "{:?}", s.events);
        assert!(s.traffic.counter >= 64 * 10);
    }

    #[test]
    fn minor_counter_overflow_triggers_reencryption() {
        let mut e = engine();
        let mut saw_overflow = false;
        for _ in 0..128 {
            let cost = e.write_block(Addr(0), 0);
            if cost.meta_bytes >= 64 * 128 {
                saw_overflow = true;
            }
        }
        assert!(saw_overflow);
        assert_eq!(e.stats().events.get("minor_overflow"), 1);
    }

    #[test]
    fn streaming_read_overhead_is_modest() {
        // A long sequential stream should cost roughly: 1 MAC block per 8
        // data blocks + 1 counter block per 64 + rare tree traffic.
        let mut e = engine();
        let n = 64 * 64; // one full L1 node worth of counter blocks
        let mut meta = 0u64;
        for i in 0..n {
            meta += e.read_block(Addr(i * 64), 0).meta_bytes;
        }
        let data = n * 64;
        let ratio = meta as f64 / data as f64;
        // 1/8 (MAC) + 1/64 (counter) + small tree = ~0.14-0.16
        assert!(ratio > 0.12 && ratio < 0.20, "ratio = {ratio}");
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut e = engine();
        e.read_block(Addr(0), 0);
        e.flush();
        e.reset_stats();
        let cost = e.read_block(Addr(0), 0);
        assert_eq!(cost.serial_misses, 4);
        assert_eq!(e.stats().counter_cache.misses, 1);
    }

    #[test]
    fn flush_accounts_dirty_metadata_writebacks() {
        // Regression test: flushing used to discard dirty counter/tree/MAC
        // lines without charging their write-back traffic.
        let mut e = engine();
        for i in 0..8 {
            e.write_block(Addr(i * 64), 1);
        }
        let before = e.stats().traffic.metadata();
        let cost = e.flush();
        assert!(cost.meta_bytes > 0, "dirty metadata must be written back");
        assert_eq!(cost.serial_misses, 0, "write-backs are independent");
        assert_eq!(
            e.stats().traffic.metadata(),
            before + cost.meta_bytes,
            "flush write-backs show up in the traffic statistics"
        );
        // A flush of clean caches is free.
        assert_eq!(e.flush(), AccessCost::FREE);
    }

    #[test]
    #[should_panic(expected = "outside protected region")]
    fn out_of_range_access_panics_instead_of_aliasing() {
        // Mirror of the treeless-engine regression test: the shared
        // clamp_block pattern must reject, not alias, in release builds.
        let mut e = engine();
        e.write_block(Addr(4 << 30), 0);
    }

    #[test]
    fn pipeline_latency_is_otp() {
        assert_eq!(engine().pipeline_latency(), Cycles(11));
    }

    #[test]
    fn vault_tree_walks_deeper() {
        let mut cfg = ProtectionConfig::paper_default();
        cfg.vault_tree = true;
        let mut vault = TreeBasedEngine::new(cfg);
        let mut uniform = engine();
        let v = vault.read_block(Addr(0), 0);
        let u = uniform.read_block(Addr(0), 0);
        assert!(
            v.serial_misses > u.serial_misses,
            "vault {} vs uniform {}",
            v.serial_misses,
            u.serial_misses
        );
    }

    #[test]
    fn version_access_is_free_for_baseline() {
        let mut e = engine();
        assert_eq!(e.version_access(Addr(0), true), AccessCost::FREE);
    }
}
