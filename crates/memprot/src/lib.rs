#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! Hardware memory-protection engines for the TNPU reproduction.
//!
//! The paper compares three ways of protecting the DRAM an integrated NPU
//! shares with the CPU:
//!
//! * **Unsecure** ([`unsecure::UnsecureEngine`]) — no protection; the
//!   normalization baseline of every figure.
//! * **Baseline** ([`tree_engine::TreeBasedEngine`]) — the conventional CPU
//!   scheme: counter-mode encryption, per-block MACs, and a 64-ary
//!   split-counter integrity tree (SC-64) over the whole DRAM, with a 4 KB
//!   counter cache, 4 KB hash cache and 8 KB MAC cache (§III-B, §V-A).
//! * **TNPU** ([`treeless_engine::TreelessEngine`]) — the paper's
//!   contribution: AES-XTS encryption (counter-less), per-block MACs that
//!   embed a *software-managed version number*, and a small tree-protected
//!   128 MB fully-protected region holding the version table (§IV-C).
//! * **Encrypt-only** ([`encrypt_only::EncryptOnlyEngine`]) — scalable-SGX
//!   style ablation: AES-XTS with no integrity protection at all (§II-B
//!   "Memory encryption without integrity protection").
//!
//! All four implement [`engine::ProtectionEngine`], which reports per-access
//! metadata traffic and exposed miss latency; the NPU simulator folds those
//! into transfer times. The [`functional`] module implements the same
//! schemes over real bytes (using [`tnpu_crypto`]) so the security claims
//! are testable, with genuine SC-64 split counters ([`counters`]) including
//! minor-overflow page re-encryption.

pub mod adversary;
pub mod config;
pub mod counters;
pub mod encrypt_only;
pub mod engine;
pub mod faults;
pub mod functional;
pub mod layout;
pub mod span;
pub mod tree;
pub mod tree_engine;
pub mod treeless_engine;
pub mod unsecure;

pub use config::ProtectionConfig;
pub use engine::{AccessCost, EngineStats, ProtectionEngine};

/// Which protection scheme an engine implements — used by experiment
/// harnesses to label results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SchemeKind {
    /// No memory protection (normalization baseline).
    Unsecure,
    /// Counter-mode encryption + SC-64 counter tree + MACs (prior work).
    TreeBased,
    /// AES-XTS + versioned MACs + software version table (the paper).
    Treeless,
    /// AES-XTS only, no integrity (scalable-SGX-style ablation).
    EncryptOnly,
}

impl SchemeKind {
    /// All schemes, in the order figures present them.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Unsecure,
        SchemeKind::TreeBased,
        SchemeKind::Treeless,
        SchemeKind::EncryptOnly,
    ];

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Unsecure => "unsecure",
            SchemeKind::TreeBased => "baseline",
            SchemeKind::Treeless => "tnpu",
            SchemeKind::EncryptOnly => "encrypt-only",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Construct the engine for `kind` under `config`.
///
/// # Examples
///
/// ```
/// use tnpu_memprot::{build_engine, ProtectionConfig, SchemeKind};
/// let engine = build_engine(SchemeKind::Treeless, &ProtectionConfig::paper_default());
/// assert_eq!(engine.scheme(), SchemeKind::Treeless);
/// ```
#[must_use]
pub fn build_engine(kind: SchemeKind, config: &ProtectionConfig) -> Box<dyn ProtectionEngine> {
    match kind {
        SchemeKind::Unsecure => Box::new(unsecure::UnsecureEngine::new()),
        SchemeKind::TreeBased => Box::new(tree_engine::TreeBasedEngine::new(config.clone())),
        SchemeKind::Treeless => Box::new(treeless_engine::TreelessEngine::new(config.clone())),
        SchemeKind::EncryptOnly => Box::new(encrypt_only::EncryptOnlyEngine::new(config.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            SchemeKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), SchemeKind::ALL.len());
    }

    #[test]
    fn build_engine_reports_scheme() {
        let cfg = ProtectionConfig::paper_default();
        for kind in SchemeKind::ALL {
            assert_eq!(build_engine(kind, &cfg).scheme(), kind);
        }
    }

    #[test]
    fn context_state_scales_with_protection() {
        // The per-context engine state a context switch must move: zero
        // for unsecure, keys-only for encrypt-only, keys + root or keys +
        // NELRANGE for the integrity schemes.
        let cfg = ProtectionConfig::paper_default();
        let bytes = |kind| build_engine(kind, &cfg).context_state_bytes();
        assert_eq!(bytes(SchemeKind::Unsecure), 0);
        assert_eq!(bytes(SchemeKind::EncryptOnly), 32);
        assert_eq!(bytes(SchemeKind::TreeBased), 48);
        assert_eq!(bytes(SchemeKind::Treeless), 64);
    }

    #[test]
    fn beat_cycles_prices_data_metadata_latency_and_stalls() {
        use tnpu_sim::dram::{BandwidthModel, DramTiming};
        let bw = BandwidthModel::bytes_per_cycle(22, 1);
        let dram = DramTiming::paper_default();
        let free = AccessCost::FREE.beat_cycles(64, &bw, &dram, tnpu_sim::Cycles::ZERO);
        // 64 B at 22 B/cyc (3 cycles, rounded up) + 100 DRAM latency.
        assert_eq!(free, 103);
        let costly = AccessCost {
            meta_bytes: 64,
            independent_misses: 0,
            serial_misses: 2,
        }
        .beat_cycles(64, &bw, &dram, tnpu_sim::Cycles(13));
        assert!(costly > free + 13, "metadata and stalls are visible");
    }
}
