//! The timing-model interface every protection scheme implements.
//!
//! The NPU's DMA engine drives these methods once per 64 B block it moves
//! (`read_block` on `mvin`, `write_block` on `mvout`), plus once per
//! transfer for the software version-table access (`version_access`,
//! meaningful only for the tree-less scheme). The engine answers with the
//! *cost* of the access: extra DRAM bytes moved for metadata, and how many
//! DRAM round-trips were exposed — split into independent misses (which the
//! memory system overlaps up to its MLP depth) and serial misses (dependent
//! fetches such as integrity-tree walks, which cannot overlap).

use crate::SchemeKind;
use tnpu_sim::cache::CacheStats;
use tnpu_sim::dram::{BandwidthModel, DramTiming};
use tnpu_sim::stats::{EventCounters, TrafficStats};
use tnpu_sim::{Addr, BlockRun, Cycles};

/// Cost of one protected block access, to be folded into a DMA transfer's
/// time by the memory model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCost {
    /// Extra DRAM bytes moved for security metadata (counters, tree nodes,
    /// MACs, version-table blocks).
    pub meta_bytes: u64,
    /// DRAM accesses that are independent of each other and of the data
    /// fetch — the memory system overlaps up to `mlp` of them.
    pub independent_misses: u64,
    /// DRAM accesses on a dependency chain (tree-walk levels): each pays
    /// full latency.
    pub serial_misses: u64,
}

impl AccessCost {
    /// A free access (everything hit on-chip).
    pub const FREE: AccessCost = AccessCost {
        meta_bytes: 0,
        independent_misses: 0,
        serial_misses: 0,
    };

    /// Merge another cost into this one.
    pub fn merge(&mut self, other: AccessCost) {
        self.meta_bytes += other.meta_bytes;
        self.independent_misses += other.independent_misses;
        self.serial_misses += other.serial_misses;
    }

    /// Cycles one DMA beat of `data_bytes` takes under this cost — the
    /// formula every consumer of the cycle model (the NPU controller, the
    /// recovery layer, the serving layer's context-switch accounting)
    /// charges: transfer time for data plus metadata, DRAM latency, the
    /// engine's `pipeline` latency, and the exposed serial-miss stalls.
    /// Saturating throughout, so a hostile cost report cannot wrap.
    #[must_use]
    pub fn beat_cycles(
        &self,
        data_bytes: u64,
        bandwidth: &BandwidthModel,
        dram: &DramTiming,
        pipeline: Cycles,
    ) -> u64 {
        let bytes = data_bytes.saturating_add(self.meta_bytes);
        bandwidth
            .transfer_time(bytes)
            .0
            .saturating_add(dram.latency.0)
            .saturating_add(pipeline.0)
            .saturating_add(dram.stall(self.serial_misses, 0).0)
    }
}

/// Aggregated statistics of an engine since the last reset.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Metadata traffic by category.
    pub traffic: TrafficStats,
    /// Counter-cache behaviour (tree-based engine; zero otherwise).
    pub counter_cache: CacheStats,
    /// Hash-cache behaviour (tree-based engine; zero otherwise).
    pub hash_cache: CacheStats,
    /// MAC-cache behaviour.
    pub mac_cache: CacheStats,
    /// Miscellaneous events (tree walks, minor-counter overflows, ...).
    pub events: EventCounters,
}

impl EngineStats {
    /// Merge another record into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.traffic.merge(&other.traffic);
        self.counter_cache.merge(&other.counter_cache);
        self.hash_cache.merge(&other.hash_cache);
        self.mac_cache.merge(&other.mac_cache);
        self.events.merge(&other.events);
    }
}

/// A memory-protection scheme's timing model.
///
/// Implementations are stateful (they own the metadata caches), so a single
/// engine instance must be shared by all NPUs of a multi-NPU system — that
/// sharing is exactly what the paper's scalability study stresses (§V-C).
pub trait ProtectionEngine: Send {
    /// The scheme this engine implements.
    fn scheme(&self) -> SchemeKind;

    /// Cost of reading the 64 B block at `addr` with expected `version`.
    fn read_block(&mut self, addr: Addr, version: u64) -> AccessCost;

    /// Cost of writing the 64 B block at `addr` with new `version`.
    fn write_block(&mut self, addr: Addr, version: u64) -> AccessCost;

    /// Cost of reading a run of consecutive 64 B blocks with expected
    /// `version`, merged into one [`AccessCost`].
    ///
    /// The default loops [`read_block`] per block, so schemes without
    /// grouped metadata (encrypt-only, unsecure) stay trivially correct.
    /// Engines whose metadata is shared by groups of data blocks override
    /// this to charge each covered metadata block once per run span —
    /// observation-equivalent to the loop (same final cache state, traffic,
    /// events and merged cost) but O(metadata blocks) in host time.
    ///
    /// [`read_block`]: ProtectionEngine::read_block
    fn read_run(&mut self, run: BlockRun, version: u64) -> AccessCost {
        let mut cost = AccessCost::FREE;
        for block in run.blocks() {
            cost.merge(self.read_block(block.base(), version));
        }
        cost
    }

    /// Cost of writing a run of consecutive 64 B blocks with new `version`;
    /// the batched counterpart of [`write_block`], see [`read_run`].
    ///
    /// [`write_block`]: ProtectionEngine::write_block
    /// [`read_run`]: ProtectionEngine::read_run
    fn write_run(&mut self, run: BlockRun, version: u64) -> AccessCost {
        let mut cost = AccessCost::FREE;
        for block in run.blocks() {
            cost.merge(self.write_block(block.base(), version));
        }
        cost
    }

    /// Cost of the software version-table access accompanying one
    /// `mvin`/`mvout` (tree-less scheme only; free elsewhere).
    ///
    /// `table_addr` is the address of the version entry inside the fully
    /// protected region; `write` is true for `mvout` (the version is
    /// incremented) and false for `mvin` (it is read).
    fn version_access(&mut self, _table_addr: Addr, _write: bool) -> AccessCost {
        AccessCost::FREE
    }

    /// Fixed pipeline (decrypt/encrypt) latency exposed once per DMA
    /// transfer. The cipher is pipelined, so per-block latency is hidden
    /// behind the streaming transfer; only the fill latency shows.
    fn pipeline_latency(&self) -> Cycles {
        Cycles::ZERO
    }

    /// Statistics since construction or the last [`reset_stats`].
    ///
    /// [`reset_stats`]: ProtectionEngine::reset_stats
    fn stats(&self) -> EngineStats;

    /// Clear statistics (cache contents are preserved — warm caches carry
    /// over between layers, as in the real hardware).
    fn reset_stats(&mut self);

    /// Bytes of on-chip engine state a context switch must save and
    /// restore through the fully-protected region: region keys, NELRANGE
    /// bounds, tree roots — whatever this scheme keeps in the engine that
    /// is *per-context* rather than per-block. Zero (the default) means
    /// the scheme has no secure per-context state to move (unsecure).
    fn context_state_bytes(&self) -> u64 {
        0
    }

    /// Drop all metadata-cache contents, writing dirty lines back to DRAM.
    /// The write-back traffic is recorded in the engine's statistics and
    /// returned as an [`AccessCost`] so the caller can charge it to the
    /// flushing flow — silently dropping dirty metadata undercounts DRAM
    /// traffic. Statistics are *not* reset; combine with [`reset_stats`]
    /// for fully fresh chip state.
    ///
    /// [`reset_stats`]: ProtectionEngine::reset_stats
    fn flush(&mut self) -> AccessCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_cost_merge() {
        let mut a = AccessCost {
            meta_bytes: 64,
            independent_misses: 1,
            serial_misses: 0,
        };
        a.merge(AccessCost {
            meta_bytes: 128,
            independent_misses: 0,
            serial_misses: 2,
        });
        assert_eq!(a.meta_bytes, 192);
        assert_eq!(a.independent_misses, 1);
        assert_eq!(a.serial_misses, 2);
    }

    #[test]
    fn engine_stats_merge() {
        let mut a = EngineStats::default();
        let mut b = EngineStats::default();
        b.traffic.mac = 64;
        b.counter_cache.hits = 3;
        b.events.add("tree_walk", 1);
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.traffic.mac, 128);
        assert_eq!(a.counter_cache.hits, 6);
        assert_eq!(a.events.get("tree_walk"), 2);
    }
}
