//! Per-block message authentication codes.
//!
//! Fig. 12 of the paper: for each 64 B memory block, an 8 B MAC is computed
//! over *(block content, block address, version number)*. The version number
//! is what turns a plain MAC into replay protection — the CPU-side software
//! supplies the expected version on `mvin` and the MAC check fails if the
//! DRAM holds a block MAC'd under an older version.
//!
//! The baseline tree-based engine uses the same construction with the
//! per-block *counter* in the role of the version number (its recency is
//! guaranteed by the counter tree instead of by software).

use crate::hmac::HmacSha256;

/// An 8-byte truncated MAC tag as stored in the MAC region of DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacTag(pub [u8; 8]);

impl MacTag {
    /// The tag as a `u64` (little-endian), for compact storage.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        u64::from_le_bytes(self.0)
    }
}

/// Computes and verifies per-block MACs under a fixed key.
#[derive(Clone)]
pub struct BlockMac {
    key: [u8; 16],
}

impl std::fmt::Debug for BlockMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockMac").finish_non_exhaustive()
    }
}

impl BlockMac {
    /// Create a MAC engine under `key`.
    #[must_use]
    pub fn new(key: crate::Key128) -> Self {
        BlockMac { key: key.0 }
    }

    /// MAC of `(data, addr, version)` truncated to 8 bytes (Fig. 12 (a)).
    #[must_use]
    pub fn tag(&self, addr: u64, version: u64, data: &[u8; 64]) -> MacTag {
        let mut mac = HmacSha256::new(&self.key);
        mac.update(data);
        mac.update(&addr.to_le_bytes());
        mac.update(&version.to_le_bytes());
        let full = mac.finalize();
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&full[..8]);
        MacTag(tag)
    }

    /// Verify a fetched block against its stored tag (Fig. 12 (b)).
    ///
    /// Returns `true` when the MAC matches, i.e. the content, address and
    /// expected version are all consistent with what was written.
    #[must_use]
    pub fn verify(&self, addr: u64, version: u64, data: &[u8; 64], stored: MacTag) -> bool {
        self.tag(addr, version, data) == stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key128;

    fn engine() -> BlockMac {
        BlockMac::new(Key128::derive(b"mac-test"))
    }

    #[test]
    fn verify_accepts_untampered() {
        let m = engine();
        let data = [1u8; 64];
        let tag = m.tag(0x40, 3, &data);
        assert!(m.verify(0x40, 3, &data, tag));
    }

    #[test]
    fn detects_data_tampering() {
        let m = engine();
        let data = [1u8; 64];
        let tag = m.tag(0x40, 3, &data);
        let mut tampered = data;
        tampered[17] ^= 0x01;
        assert!(!m.verify(0x40, 3, &tampered, tag));
    }

    #[test]
    fn detects_relocation() {
        // Moving a valid (data, MAC) pair to a different address must fail:
        // the address is bound into the MAC.
        let m = engine();
        let data = [2u8; 64];
        let tag = m.tag(0x40, 3, &data);
        assert!(!m.verify(0x80, 3, &data, tag));
    }

    #[test]
    fn detects_stale_version() {
        // The replay case: old data with its old (valid) MAC, but software
        // expects a newer version.
        let m = engine();
        let data = [3u8; 64];
        let old_tag = m.tag(0x40, 3, &data);
        assert!(!m.verify(0x40, 4, &data, old_tag));
    }

    #[test]
    fn tag_is_deterministic() {
        let m = engine();
        let data = [4u8; 64];
        assert_eq!(m.tag(0, 0, &data), m.tag(0, 0, &data));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        let a = BlockMac::new(Key128::derive(b"a"));
        let b = BlockMac::new(Key128::derive(b"b"));
        let data = [5u8; 64];
        assert_ne!(a.tag(0, 0, &data), b.tag(0, 0, &data));
    }

    #[test]
    fn tag_as_u64_roundtrip() {
        let t = MacTag([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(t.as_u64().to_le_bytes(), t.0);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let s = format!("{:?}", engine());
        assert!(!s.contains("key"));
    }
}
