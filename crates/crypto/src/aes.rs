//! AES-128 block cipher.
//!
//! The S-box is *derived* (multiplicative inverse in GF(2⁸) followed by the
//! affine transform) rather than hard-coded, and the implementation is
//! checked against the FIPS-197 Appendix C known-answer vector in the tests.
//! Straightforward and untimed — suitable for a simulator's functional
//! datapath, not for production.

use crate::Key128;

/// Multiply two elements of GF(2⁸) with the AES polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸); 0 maps to 0.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8).
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

fn affine(x: u8) -> u8 {
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// Multiplication tables for the MixColumns constants, indexed
    /// `[constant][x]` with constants 2, 3, 9, 11, 13, 14.
    mul: [[u8; 256]; 6],
}

/// Indices into [`Tables::mul`].
const M2: usize = 0;
const M3: usize = 1;
const M9: usize = 2;
const M11: usize = 3;
const M13: usize = 4;
const M14: usize = 5;

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for (i, slot) in sbox.iter_mut().enumerate() {
            let s = affine(gf_inv(i as u8));
            *slot = s;
            inv_sbox[s as usize] = i as u8;
        }
        let mut mul = [[0u8; 256]; 6];
        for (slot, c) in [(M2, 2), (M3, 3), (M9, 9), (M11, 11), (M13, 13), (M14, 14)] {
            for (x, entry) in mul[slot].iter_mut().enumerate() {
                *entry = gf_mul(c, x as u8);
            }
        }
        Tables {
            sbox,
            inv_sbox,
            mul,
        }
    })
}

/// An expanded AES-128 key schedule (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expand `key` into the round-key schedule.
    #[must_use]
    pub fn new(key: Key128) -> Self {
        let t = tables();
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.0.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = t.sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        let t = tables();
        for b in state.iter_mut() {
            *b = t.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let t = tables();
        for b in state.iter_mut() {
            *b = t.inv_sbox[*b as usize];
        }
    }

    // State layout: column-major, state[r + 4c] = row r, column c,
    // matching the FIPS byte order of a 16-byte input block.
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        let t = tables();
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                t.mul[M2][col[0] as usize] ^ t.mul[M3][col[1] as usize] ^ col[2] ^ col[3];
            state[4 * c + 1] =
                col[0] ^ t.mul[M2][col[1] as usize] ^ t.mul[M3][col[2] as usize] ^ col[3];
            state[4 * c + 2] =
                col[0] ^ col[1] ^ t.mul[M2][col[2] as usize] ^ t.mul[M3][col[3] as usize];
            state[4 * c + 3] =
                t.mul[M3][col[0] as usize] ^ col[1] ^ col[2] ^ t.mul[M2][col[3] as usize];
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        let t = tables();
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = t.mul[M14][col[0] as usize]
                ^ t.mul[M11][col[1] as usize]
                ^ t.mul[M13][col[2] as usize]
                ^ t.mul[M9][col[3] as usize];
            state[4 * c + 1] = t.mul[M9][col[0] as usize]
                ^ t.mul[M14][col[1] as usize]
                ^ t.mul[M11][col[2] as usize]
                ^ t.mul[M13][col[3] as usize];
            state[4 * c + 2] = t.mul[M13][col[0] as usize]
                ^ t.mul[M9][col[1] as usize]
                ^ t.mul[M14][col[2] as usize]
                ^ t.mul[M11][col[3] as usize];
            state[4 * c + 3] = t.mul[M11][col[0] as usize]
                ^ t.mul[M13][col[1] as usize]
                ^ t.mul[M9][col[2] as usize]
                ^ t.mul[M14][col[3] as usize];
        }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for r in 1..10 {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[r]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[10]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[10]);
        for r in (1..10).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[r]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt a copy of `block`.
    #[must_use]
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut b = block;
        self.encrypt_block(&mut b);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_first_entries() {
        // S(0x00) = 0x63, S(0x01) = 0x7c, S(0x53) = 0xed (FIPS-197 examples).
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        let t = tables();
        for i in 0..256 {
            assert_eq!(t.inv_sbox[t.sbox[i] as usize] as usize, i);
        }
    }

    #[test]
    fn fips197_known_answer() {
        // FIPS-197 Appendix C.1.
        let key = Key128([
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ]);
        let mut block = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(key);
        aes.encrypt_block(&mut block);
        assert_eq!(block, expected);
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(Key128::derive(b"roundtrip"));
        for i in 0..32u8 {
            let mut block = [i; 16];
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes128::new(Key128::derive(b"a"));
        let b = Aes128::new(Key128::derive(b"b"));
        let pt = [0x42u8; 16];
        assert_ne!(a.encrypt(pt), b.encrypt(pt));
    }

    #[test]
    fn gf_mul_known_values() {
        // FIPS-197 §4.2: {57} x {83} = {c1}, {57} x {13} = {fe}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes128::new(Key128::derive(b"secret"));
        let s = format!("{aes:?}");
        assert!(!s.contains("round_keys"));
    }
}
