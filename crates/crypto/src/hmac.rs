//! HMAC-SHA256, the keyed MAC behind per-block MACs and attestation reports.

use crate::sha256::{sha256, Sha256};

/// HMAC-SHA256 of `data` under `key`.
///
/// # Examples
///
/// ```
/// use tnpu_crypto::hmac::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag, hmac_sha256(b"key", b"message"));
/// assert_ne!(tag, hmac_sha256(b"key2", b"message"));
/// ```
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut block_key = [0u8; 64];
    if key.len() > 64 {
        block_key[..32].copy_from_slice(&sha256(key));
    } else {
        block_key[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= block_key[i];
        opad[i] ^= block_key[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// An incremental HMAC-SHA256 context for MACing scattered fields without
/// concatenating them into a buffer first.
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad: [u8; 64],
}

impl HmacSha256 {
    /// Start a MAC under `key`.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; 64];
        if key.len() > 64 {
            block_key[..32].copy_from_slice(&sha256(key));
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; 64];
        let mut opad = [0x5cu8; 64];
        for i in 0..64 {
            ipad[i] ^= block_key[i];
            opad[i] ^= block_key[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad }
    }

    /// Absorb more data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let key = vec![0xaau8; 131];
        // A >64-byte key must behave identically to its SHA-256 digest.
        let tag1 = hmac_sha256(&key, b"data");
        let tag2 = hmac_sha256(&sha256(&key), b"data");
        assert_eq!(tag1, tag2);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut ctx = HmacSha256::new(b"key");
        ctx.update(b"hello ");
        ctx.update(b"world");
        assert_eq!(ctx.finalize(), hmac_sha256(b"key", b"hello world"));
    }

    #[test]
    fn data_sensitivity() {
        assert_ne!(hmac_sha256(b"k", b"a"), hmac_sha256(b"k", b"b"));
    }
}
