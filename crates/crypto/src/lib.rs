#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! Functional cryptographic primitives for the TNPU reproduction.
//!
//! The paper's memory-protection engines are evaluated with *cost models*,
//! but this reproduction also implements the actual datapath so that the
//! security claims (confidentiality, integrity, replay detection) are
//! testable end-to-end:
//!
//! * [`aes`] — AES-128 block cipher (S-box derived from the GF(2⁸) inverse,
//!   verified against the FIPS-197 vector).
//! * [`ctr`] — counter-mode one-time-pad encryption of 64 B memory blocks,
//!   the baseline engine's cipher (§II-B, Fig. 1).
//! * [`xts`] — AES-XTS encryption of 64 B blocks, the tree-less engine's
//!   cipher ("the entire DRAM ... is encrypted with AES-XTS similar to Intel
//!   Total Memory Encryption", §IV-C).
//! * [`sha256`] / [`hmac`] — hash and keyed MAC used for per-block MACs,
//!   integrity-tree nodes, and enclave measurement.
//! * [`mac`] — the 8-byte per-block MAC binding (content, address, version),
//!   exactly the construction of Fig. 12.
//!
//! None of this is constant-time or side-channel hardened — side channels
//! are out of the paper's threat model (§II-E) and out of scope here too.
//! Do **not** reuse these primitives in production systems.

pub mod aes;
pub mod ctr;
pub mod hmac;
pub mod mac;
pub mod sha256;
pub mod xts;

/// A 128-bit symmetric key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128(pub [u8; 16]);

impl Key128 {
    /// Derive a deterministic key from a label — convenient for simulation
    /// setups where each protection domain needs a distinct key.
    ///
    /// # Examples
    ///
    /// ```
    /// use tnpu_crypto::Key128;
    /// let a = Key128::derive(b"npu-data");
    /// let b = Key128::derive(b"npu-mac");
    /// assert_ne!(a, b);
    /// assert_eq!(a, Key128::derive(b"npu-data"));
    /// ```
    #[must_use]
    pub fn derive(label: &[u8]) -> Self {
        let digest = sha256::sha256(label);
        let mut key = [0u8; 16];
        key.copy_from_slice(&digest[..16]);
        Key128(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        assert_eq!(Key128::derive(b"x"), Key128::derive(b"x"));
        assert_ne!(Key128::derive(b"x"), Key128::derive(b"y"));
    }
}
