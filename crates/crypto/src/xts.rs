//! AES-XTS encryption of 64-byte memory blocks — the tree-less engine's
//! cipher.
//!
//! The paper adopts counter-less total-memory encryption ("the entire DRAM,
//! except for the fully protected region, is encrypted with AES-XTS similar
//! to Intel Total Memory Encryption", §IV-C). XTS needs no per-block
//! counters: the tweak is derived from the block address alone, so no
//! metadata caches are required — that is exactly the property TNPU exploits.
//!
//! Each 64 B memory block is one XTS "data unit" of four 16 B AES blocks.

use crate::aes::Aes128;
use crate::Key128;

/// Multiply an element of GF(2¹²⁸) by α (the XTS tweak update), little-endian
/// byte order per IEEE 1619.
fn gf128_mul_alpha(tweak: &mut [u8; 16]) {
    let mut carry = 0u8;
    for byte in tweak.iter_mut() {
        let new_carry = *byte >> 7;
        *byte = (*byte << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        tweak[0] ^= 0x87;
    }
}

/// AES-XTS encryptor for 64-byte blocks.
#[derive(Debug, Clone)]
pub struct XtsMode {
    data_cipher: Aes128,
    tweak_cipher: Aes128,
}

impl XtsMode {
    /// Create an encryptor; XTS uses two independent keys.
    #[must_use]
    pub fn new(data_key: Key128, tweak_key: Key128) -> Self {
        XtsMode {
            data_cipher: Aes128::new(data_key),
            tweak_cipher: Aes128::new(tweak_key),
        }
    }

    /// Derive both keys from a single master key.
    #[must_use]
    pub fn from_master(master: Key128) -> Self {
        let mut data_label = b"xts-data".to_vec();
        data_label.extend_from_slice(&master.0);
        let mut tweak_label = b"xts-tweak".to_vec();
        tweak_label.extend_from_slice(&master.0);
        XtsMode::new(Key128::derive(&data_label), Key128::derive(&tweak_label))
    }

    fn initial_tweak(&self, unit: u64) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&unit.to_le_bytes());
        self.tweak_cipher.encrypt_block(&mut t);
        t
    }

    /// Encrypt a 64-byte block in place; `unit` is the data-unit number
    /// (the 64 B block address divided by 64).
    pub fn encrypt_block(&self, unit: u64, block: &mut [u8; 64]) {
        let mut tweak = self.initial_tweak(unit);
        for chunk in block.chunks_exact_mut(16) {
            let mut b: [u8; 16] = chunk.try_into().expect("16-byte chunk");
            for (x, t) in b.iter_mut().zip(tweak.iter()) {
                *x ^= t;
            }
            self.data_cipher.encrypt_block(&mut b);
            for (x, t) in b.iter_mut().zip(tweak.iter()) {
                *x ^= t;
            }
            chunk.copy_from_slice(&b);
            gf128_mul_alpha(&mut tweak);
        }
    }

    /// Decrypt a 64-byte block in place.
    pub fn decrypt_block(&self, unit: u64, block: &mut [u8; 64]) {
        let mut tweak = self.initial_tweak(unit);
        for chunk in block.chunks_exact_mut(16) {
            let mut b: [u8; 16] = chunk.try_into().expect("16-byte chunk");
            for (x, t) in b.iter_mut().zip(tweak.iter()) {
                *x ^= t;
            }
            self.data_cipher.decrypt_block(&mut b);
            for (x, t) in b.iter_mut().zip(tweak.iter()) {
                *x ^= t;
            }
            chunk.copy_from_slice(&b);
            gf128_mul_alpha(&mut tweak);
        }
    }

    /// Encrypt a copy of `block`.
    #[must_use]
    pub fn encrypt(&self, unit: u64, block: &[u8; 64]) -> [u8; 64] {
        let mut out = *block;
        self.encrypt_block(unit, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> XtsMode {
        XtsMode::from_master(Key128::derive(b"xts-test"))
    }

    #[test]
    fn roundtrip() {
        let e = engine();
        let plain: [u8; 64] = std::array::from_fn(|i| i as u8);
        let mut block = plain;
        e.encrypt_block(77, &mut block);
        assert_ne!(block, plain);
        e.decrypt_block(77, &mut block);
        assert_eq!(block, plain);
    }

    #[test]
    fn unit_number_changes_ciphertext() {
        let e = engine();
        let block = [0u8; 64];
        assert_ne!(e.encrypt(1, &block), e.encrypt(2, &block));
    }

    #[test]
    fn same_unit_same_data_is_deterministic() {
        // XTS (unlike CTR with fresh counters) is deterministic per (unit,
        // data) — re-encrypting identical data in place yields identical
        // ciphertext. This is the confidentiality trade-off scalable SGX
        // accepts; the paper accepts it too.
        let e = engine();
        let block = [3u8; 64];
        assert_eq!(e.encrypt(5, &block), e.encrypt(5, &block));
    }

    #[test]
    fn chunks_within_block_use_distinct_tweaks() {
        let e = engine();
        let block = [0u8; 64];
        let ct = e.encrypt(9, &block);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ct[i * 16..(i + 1) * 16], ct[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn gf128_doubling_carry() {
        // Highest bit set -> reduction by 0x87 in byte 0.
        let mut t = [0u8; 16];
        t[15] = 0x80;
        gf128_mul_alpha(&mut t);
        assert_eq!(t[0], 0x87);
        assert_eq!(t[15], 0x00);
    }

    #[test]
    fn gf128_doubling_shifts() {
        let mut t = [0u8; 16];
        t[0] = 0x01;
        gf128_mul_alpha(&mut t);
        assert_eq!(t[0], 0x02);
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let a = engine();
        let b = XtsMode::from_master(Key128::derive(b"other"));
        let plain = [7u8; 64];
        let mut block = a.encrypt(3, &plain);
        b.decrypt_block(3, &mut block);
        assert_ne!(block, plain);
    }
}
