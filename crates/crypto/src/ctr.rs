//! Counter-mode (OTP) encryption of 64-byte memory blocks — the baseline
//! engine's cipher.
//!
//! Following the paper's Fig. 1, the one-time pad for a block is generated
//! from the secret key, the block's address, and its per-block counter
//! value. A 64 B block needs four 16 B pad chunks; each chunk's seed binds
//! (address, counter, chunk index) so no pad bytes ever repeat for distinct
//! (address, counter) pairs.

use crate::aes::Aes128;
use crate::Key128;

/// Counter-mode encryptor for 64-byte blocks.
#[derive(Debug, Clone)]
pub struct CtrMode {
    aes: Aes128,
}

impl CtrMode {
    /// Create an encryptor with the given key.
    #[must_use]
    pub fn new(key: Key128) -> Self {
        CtrMode {
            aes: Aes128::new(key),
        }
    }

    fn pad(&self, addr: u64, counter: u64) -> [u8; 64] {
        let mut pad = [0u8; 64];
        for chunk in 0..4u8 {
            let mut seed = [0u8; 16];
            seed[..8].copy_from_slice(&addr.to_le_bytes());
            seed[8..15].copy_from_slice(&counter.to_le_bytes()[..7]);
            seed[15] = chunk;
            self.aes.encrypt_block(&mut seed);
            pad[chunk as usize * 16..(chunk as usize + 1) * 16].copy_from_slice(&seed);
        }
        pad
    }

    /// Encrypt (or decrypt — the operation is an involution) a 64-byte block
    /// in place with the pad for `(addr, counter)`.
    pub fn apply(&self, addr: u64, counter: u64, block: &mut [u8; 64]) {
        let pad = self.pad(addr, counter);
        for (b, p) in block.iter_mut().zip(pad.iter()) {
            *b ^= p;
        }
    }

    /// Encrypt a copy of `block`.
    #[must_use]
    pub fn encrypt(&self, addr: u64, counter: u64, block: &[u8; 64]) -> [u8; 64] {
        let mut out = *block;
        self.apply(addr, counter, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CtrMode {
        CtrMode::new(Key128::derive(b"ctr-test"))
    }

    #[test]
    fn roundtrip() {
        let e = engine();
        let mut block = [0x5au8; 64];
        e.apply(0x1000, 7, &mut block);
        assert_ne!(block, [0x5au8; 64]);
        e.apply(0x1000, 7, &mut block);
        assert_eq!(block, [0x5au8; 64]);
    }

    #[test]
    fn counter_changes_ciphertext() {
        let e = engine();
        let block = [0u8; 64];
        let c1 = e.encrypt(0x1000, 1, &block);
        let c2 = e.encrypt(0x1000, 2, &block);
        assert_ne!(c1, c2, "same data re-encrypted after update must differ");
    }

    #[test]
    fn address_changes_ciphertext() {
        let e = engine();
        let block = [0u8; 64];
        assert_ne!(e.encrypt(0x1000, 1, &block), e.encrypt(0x1040, 1, &block));
    }

    #[test]
    fn pad_chunks_are_distinct() {
        // The four 16-byte pad chunks within a block must differ (chunk
        // index is part of the seed).
        let e = engine();
        let zero = [0u8; 64];
        let ct = e.encrypt(0, 0, &zero);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ct[i * 16..(i + 1) * 16], ct[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn keys_are_isolated() {
        let a = CtrMode::new(Key128::derive(b"a"));
        let b = CtrMode::new(Key128::derive(b"b"));
        let block = [9u8; 64];
        assert_ne!(a.encrypt(0, 0, &block), b.encrypt(0, 0, &block));
    }
}
