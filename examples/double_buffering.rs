//! The execution model of the paper's Fig. 8: `mvin` / `preload+compute` /
//! `mvout` pipelined through double buffering. This example traces the
//! first tile jobs of a layer and shows how loads of tile *i+1* overlap the
//! computation of tile *i* — and how protection overhead eats into that
//! overlap.
//!
//! ```text
//! cargo run --release --example double_buffering
//! ```

use tnpu::memprot::{build_engine, ProtectionConfig, SchemeKind};
use tnpu::models::registry;
use tnpu::npu::alloc::ModelLayout;
use tnpu::npu::config::NpuConfig;
use tnpu::npu::controller::MemoryController;
use tnpu::npu::machine::NpuMachine;
use tnpu::npu::tiler;
use tnpu::sim::Addr;

fn trace(scheme: SchemeKind) -> (u64, u64, u64) {
    let model = registry::model("alex").expect("registered");
    let npu = NpuConfig::small_npu();
    let layout = ModelLayout::allocate(&model, Addr(0));
    let plan = tiler::plan(&model, &npu, &layout, 8);
    let jobs = plan.jobs.len() as u64;
    let compute_only = plan.compute_cycles().0;
    let engine = build_engine(scheme, &ProtectionConfig::paper_default());
    let mut ctl = MemoryController::new(engine, &npu);
    let mut machine = NpuMachine::new(plan);
    while !machine.is_done() {
        machine.serve_next(&mut ctl);
    }
    (jobs, compute_only, machine.into_report(&ctl).total.0)
}

fn main() {
    println!("AlexNet on the small NPU - the Fig. 8 pipeline in numbers\n");
    let (jobs, compute, unsec) = trace(SchemeKind::Unsecure);
    println!("tile jobs:            {jobs}");
    println!("pure compute cycles:  {compute:>12}  (if memory were free)");
    println!("pipelined (unsecure): {unsec:>12}");
    let overlap = 1.0 - (unsec.saturating_sub(compute)) as f64 / unsec as f64;
    println!(
        "double buffering hides {:.0} % of the run behind compute\n",
        overlap * 100.0
    );
    for scheme in [SchemeKind::TreeBased, SchemeKind::Treeless] {
        let (_, _, total) = trace(scheme);
        println!(
            "{:12} total {total:>12}  (+{:.1} % over unsecure)",
            scheme.label(),
            (total as f64 / unsec as f64 - 1.0) * 100.0
        );
    }
    println!("\nmvin streams for tile i+1 run while tile i computes; the security");
    println!("engine's metadata traffic and counter-miss stalls lengthen exactly");
    println!("those overlapped memory phases, which is where the overhead appears.");
}
