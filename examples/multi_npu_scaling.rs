//! The scalability study of the paper's §V-C (Fig. 16): 1–3 NPUs share
//! one memory controller and one security engine, so the baseline's
//! metadata caches thrash as NPUs multiply while TNPU barely notices.
//!
//! ```text
//! cargo run --release --example multi_npu_scaling
//! ```

use tnpu::core::{Scheme, TnpuSystem};
use tnpu::models::registry;
use tnpu::npu::config::NpuConfig;

fn slowest(reports: &[tnpu::core::SystemReport]) -> f64 {
    reports
        .iter()
        .map(|r| r.total_time.0)
        .max()
        .expect("non-empty") as f64
}

fn main() {
    let models = ["res", "tf"];
    for name in models {
        let model = registry::model(name).expect("registered");
        println!("== {} on the small NPU ==", model.full_name);
        println!(
            "{:>5} {:>10} {:>10} {:>12}",
            "NPUs", "baseline", "tnpu", "improvement"
        );
        for count in 1..=3usize {
            let unsec = slowest(
                &TnpuSystem::new(NpuConfig::small_npu(), Scheme::Unsecure)
                    .run_inference_multi(&model, count)
                    .expect("valid"),
            );
            let tree = slowest(
                &TnpuSystem::new(NpuConfig::small_npu(), Scheme::TreeBased)
                    .run_inference_multi(&model, count)
                    .expect("valid"),
            ) / unsec;
            let tnpu = slowest(
                &TnpuSystem::new(NpuConfig::small_npu(), Scheme::Treeless)
                    .run_inference_multi(&model, count)
                    .expect("valid"),
            ) / unsec;
            println!(
                "{count:>5} {tree:>10.3} {tnpu:>10.3} {:>11.1} %",
                (tree - tnpu) / tree * 100.0
            );
        }
        println!();
    }
    println!("normalization: each row divides by the unsecure run of the same NPU count,");
    println!("exactly as the paper's Fig. 16 does.");
}
