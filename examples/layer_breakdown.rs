//! Per-layer timing breakdown: where the protection overhead actually
//! lands inside one inference — the layer-level view behind Fig. 14's
//! bars (embedding layers pay; compute-bound conv layers hide it).
//!
//! ```text
//! cargo run --release --example layer_breakdown
//! ```

use tnpu::memprot::SchemeKind;
use tnpu::models::registry;
use tnpu::npu::{simulate, NpuConfig};

fn main() {
    let model = registry::model("sent").expect("registered");
    let npu = NpuConfig::small_npu();
    let unsec = simulate(&model, &npu, SchemeKind::Unsecure);
    let tree = simulate(&model, &npu, SchemeKind::TreeBased);
    let tnpu = simulate(&model, &npu, SchemeKind::Treeless);

    println!(
        "{} on the small NPU — per-layer finish times (cycles)\n",
        model.full_name
    );
    println!(
        "{:16} {:>12} {:>12} {:>12}  {:>9} {:>9}",
        "layer", "unsecure", "baseline", "tnpu", "base oh", "tnpu oh"
    );
    let mut prev = (0u64, 0u64, 0u64);
    for (i, layer) in unsec.layers.iter().enumerate() {
        if layer.data_bytes == 0 {
            continue; // zero-cost concat
        }
        let u = layer.finish.0 - prev.0;
        let b = tree.layers[i].finish.0 - prev.1;
        let t = tnpu.layers[i].finish.0 - prev.2;
        prev = (
            layer.finish.0,
            tree.layers[i].finish.0,
            tnpu.layers[i].finish.0,
        );
        println!(
            "{:16} {u:>12} {b:>12} {t:>12}  {:>8.1}% {:>8.1}%",
            layer.name,
            (b as f64 / u as f64 - 1.0) * 100.0,
            (t as f64 / u as f64 - 1.0) * 100.0,
        );
    }
    println!(
        "\ntotal            {:>12} {:>12} {:>12}  {:>8.1}% {:>8.1}%",
        unsec.total.0,
        tree.total.0,
        tnpu.total.0,
        (tree.total.as_f64() / unsec.total.as_f64() - 1.0) * 100.0,
        (tnpu.total.as_f64() / unsec.total.as_f64() - 1.0) * 100.0,
    );
    println!("\nthe embedding gather layer carries nearly all of the baseline's");
    println!("overhead — the counter cache cannot hold its scattered rows — while");
    println!("the compute-heavy convolution hides the MAC traffic of both schemes.");
}
