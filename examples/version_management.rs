//! The paper's running example (Figs. 9 & 13): version-number management
//! for a tiled matrix multiplication and for a ResNet50 layer with a
//! residual add (Fig. 7).
//!
//! ```text
//! cargo run --release --example version_management
//! ```

use tnpu::core::VersionTable;
use tnpu::models::registry;
use tnpu_models::LayerKind;

fn main() {
    // --- Fig. 9: 2x2-tiled matmul. The output matrix C is produced in
    // four tiles, each accumulated over two K steps.
    println!("== Fig. 9: tiled matmul (A x B = C, 2x2 tiles, 2 K-steps) ==");
    let mut table = VersionTable::new();
    let (a, b, c) = (0, 1, 2);
    for t in [a, b, c] {
        table.register(t);
    }
    table.bump(a).expect("A initialized");
    table.bump(b).expect("B initialized");
    table.expand(c, 4).expect("C expands into 2x2 tiles");
    for step in 0..2 {
        for tile in 0..4 {
            let v = table.bump_tile(c, tile).expect("mvout bumps the tile");
            println!("step {step}: mvout C tile {tile} with version {v}");
        }
    }
    let merged = table.merge(c).expect("uniform tiles merge");
    println!("all tiles equal -> merged into a single version {merged}");
    println!(
        "table storage now {} B (peak {} B)\n",
        table.storage_bytes(),
        table.peak_storage_bytes()
    );

    // --- Fig. 7: in ResNet50, the residual Add writes tensor D, so only
    // D's version moves; the tensors it reads keep theirs.
    println!("== Fig. 7: ResNet50 residual add updates only its output ==");
    let model = registry::model("res").expect("registered");
    let (idx, add) = model
        .layers
        .iter()
        .enumerate()
        .find(|(_, l)| matches!(l.kind, LayerKind::Eltwise { .. }))
        .expect("resnet has adds");
    println!("first residual add: layer {idx} ({})", add.name);
    let mut t = VersionTable::new();
    let (input_a, input_d) = (10, 11);
    t.register(input_a);
    t.register(input_d);
    t.bump(input_a).expect("A produced");
    t.bump(input_d).expect("D produced");
    let before = (
        t.version(input_a, 0).expect("a"),
        t.version(input_d, 0).expect("d"),
    );
    // Add(A, previous) -> D is updated in place in the paper's figure:
    let after_d = t.bump(input_d).expect("Add writes D");
    println!(
        "before add: version(A)={}, version(D)={}",
        before.0, before.1
    );
    println!(
        "after  add: version(A)={}, version(D)={after_d}",
        t.version(input_a, 0).expect("a")
    );

    // --- §IV-D: table storage for the full ResNet50 stays KB-scale.
    let layout = tnpu::npu::alloc::ModelLayout::allocate(&model, tnpu::sim::Addr(0));
    let mut full = VersionTable::new();
    for id in 0..layout.tensor_count {
        full.register(id);
    }
    println!(
        "\nResNet50: {} tensors -> {} B steady-state version storage (paper: ~1.3 KB average)",
        full.tensors(),
        full.storage_bytes()
    );
}
