//! The full trusted pipeline of the paper's Fig. 3: enclave setup with
//! measured pages, attestation, access-control checks, and a functional
//! secure inference whose every byte moves through AES-XTS + versioned
//! MACs.
//!
//! ```text
//! cargo run --release --example secure_pipeline
//! ```

use tnpu::core::{Scheme, TnpuSystem};
use tnpu::crypto::Key128;
use tnpu::models::registry;
use tnpu::npu::config::NpuConfig;
use tnpu::tee::attest::AttestationAuthority;
use tnpu::tee::driver::{NpuCommand, NpuDriverEnclave};
use tnpu::tee::enclave::{EnclaveManager, RegionKind};
use tnpu::tee::epcm::Eepcm;
use tnpu::tee::mmu::Mmu;
use tnpu::tee::pagetable::PageTable;
use tnpu::tee::{Access, Perms, Ppn, Vpn};
use tnpu_core::sensor::{Sensor, SensorReceiver};

fn main() {
    // --- 1. Enclave setup: the ML application is loaded into a measured
    // enclave; its NPU tensors live in tree-less protected pages.
    let mut manager = EnclaveManager::new();
    let mut eepcm = Eepcm::new();
    let mut page_table = PageTable::new();
    let driver_id = manager.create();
    let app_id = manager.create();
    manager
        .add_page(
            &mut eepcm,
            &mut page_table,
            app_id,
            Vpn(0x100),
            Ppn(0x800),
            RegionKind::FullyProtected,
            Perms::RX,
            b"ml-app-code-v1",
        )
        .expect("code page");
    manager
        .add_page(
            &mut eepcm,
            &mut page_table,
            app_id,
            Vpn(0x200),
            Ppn(0x900),
            RegionKind::Treeless,
            Perms::RW,
            b"",
        )
        .expect("tensor page");
    manager
        .set_nelrange(app_id, 0x20_0000..0x40_0000)
        .expect("range");
    let measurement = manager.initialize(app_id).expect("finalize");
    println!("enclave {app_id} measured: {:02x?}...", &measurement[..8]);

    // --- 2. Attestation: the remote party verifies the enclave binary.
    let authority = AttestationAuthority::new(Key128::derive(b"device-fused-key"));
    let nonce = [0x42u8; 16];
    let report = authority.report(manager.get(app_id).expect("exists"), nonce);
    assert!(authority.verify(&report, &measurement, &nonce));
    println!("attestation report verified against expected measurement");

    // --- 3. The driver enclave grants an NPU context; a foreign enclave
    // cannot command it.
    let mut driver = NpuDriverEnclave::new(driver_id, 1);
    let npu = driver.acquire(app_id).expect("free NPU");
    driver
        .issue(app_id, npu, NpuCommand::Compute)
        .expect("owner commands");
    let intruder = manager.create();
    assert!(driver.issue(intruder, npu, NpuCommand::Compute).is_err());
    println!("driver enclave: owner may command the NPU, intruder rejected");

    // --- 4. The IOMMU catches a malicious OS remapping the tensor page.
    let mut iommu = Mmu::new(app_id, 64);
    iommu
        .translate(&page_table, &eepcm, Vpn(0x200), Access::Write)
        .expect("legitimate translation validates");
    page_table.map(Vpn(0x200), Ppn(0x800)); // OS points tensors at the code page
    iommu.flush_tlb();
    let attack = iommu.translate(&page_table, &eepcm, Vpn(0x200), Access::Write);
    println!("page-remap attack result: {attack:?}");
    assert!(attack.is_err());

    // --- 5. Sensor leg of Fig. 3: the sample arrives encrypted and
    // authenticated; a replayed frame is rejected before it ever reaches
    // the model.
    let session = Key128::derive(b"sensor-session");
    let mut sensor = Sensor::new(session);
    let mut receiver = SensorReceiver::new(session);
    let frame = sensor.capture(b"camera frame #1");
    let sample = receiver.receive(&frame).expect("fresh frame verifies");
    println!(
        "sensor frame verified and decrypted: {} bytes",
        sample.len()
    );
    assert!(receiver.receive(&frame).is_err(), "replayed frame rejected");
    println!("replayed sensor frame rejected");

    // --- 6. Functional secure inference: every byte encrypted + MAC'd,
    // versions managed per tensor/tile.
    let model = registry::model("agz").expect("registered");
    let mut system = TnpuSystem::new(NpuConfig::small_npu(), Scheme::Treeless);
    let output = system
        .run_functional(&model, Key128::derive(b"session"), 7)
        .expect("untampered run verifies");
    println!(
        "functional secure inference of {} produced {} verified output bytes",
        model.full_name,
        output.len()
    );
    println!("pipeline complete: setup -> attest -> access control -> secure inference");
}
