//! Quickstart: simulate one secure inference and compare the protection
//! schemes — the paper's Fig. 14 in miniature.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tnpu::core::{Scheme, TnpuSystem};
use tnpu::models::registry;
use tnpu::npu::config::NpuConfig;

fn main() {
    let model = registry::model("res").expect("resnet50 is registered");
    println!(
        "model: {} ({:.1} MB footprint, {:.2} GMACs)\n",
        model.full_name,
        model.footprint_bytes() as f64 / (1 << 20) as f64,
        model.total_macs() as f64 / 1e9,
    );

    for npu in NpuConfig::paper_configs() {
        println!(
            "== {} NPU ({}x{} PEs, {} KB SPM) ==",
            npu.name,
            npu.rows,
            npu.cols,
            npu.spm_bytes >> 10
        );
        let unsecure = TnpuSystem::new(npu.clone(), Scheme::Unsecure)
            .run_inference(&model)
            .expect("valid model");
        for scheme in [Scheme::Unsecure, Scheme::TreeBased, Scheme::Treeless] {
            let mut system = TnpuSystem::new(npu.clone(), scheme);
            let report = system.run_inference(&model).expect("valid model");
            let normalized = report.total_time.as_f64() / unsecure.total_time.as_f64();
            println!(
                "{:12}  {:>12} cycles  ({normalized:.3}x)   traffic {:6.1} MB  ctr-miss {:5.2} %",
                scheme.label(),
                report.total_time.0,
                report.npu.total_traffic() as f64 / 1e6,
                report.npu.engine.counter_cache.miss_rate() * 100.0,
            );
        }
        println!();
    }
    println!("TNPU (tree-less) recovers most of the baseline's overhead by");
    println!("replacing the counter tree with software-managed version numbers.");
}
