//! Physical-attack demonstrations over the functional datapath: bus
//! tampering, relocation, and replay against both protection schemes —
//! the threat rows of the paper's Table I that TNPU covers.
//!
//! ```text
//! cargo run --release --example attack_detection
//! ```

use tnpu::crypto::Key128;
use tnpu::memprot::functional::{CounterTreeMemory, TreelessMemory};
use tnpu::models::registry;
use tnpu::sim::Addr;
use tnpu_core::secure_runner::{RunError, SecureRunner};

fn main() {
    println!("== tree-less (TNPU) protected memory ==");
    let mut mem = TreelessMemory::new(Key128::derive(b"demo"));
    let secret = *b"MODEL-WEIGHTS-v1MODEL-WEIGHTS-v1MODEL-WEIGHTS-v1MODEL-WEIGHTS-v1";
    mem.write_block(Addr(0), 1, secret);

    println!(
        "confidentiality: plaintext visible in DRAM? {}",
        mem.dram().contains_bytes(b"MODEL-WEIGHTS")
    );

    mem.dram_mut().block_mut(Addr(0)).expect("written")[5] ^= 1;
    println!(
        "bit-flip on the bus:   {:?}",
        mem.read_block(Addr(0), 1).expect_err("detected")
    );
    mem.write_block(Addr(0), 1, secret); // repair

    let snapshot = mem.snapshot(Addr(0)).expect("written");
    mem.write_block(Addr(0), 2, [0u8; 64]); // victim updates (version 2)
    mem.restore(Addr(0), snapshot); // attacker replays version-1 state
    println!(
        "replay of stale data:  {:?}",
        mem.read_block(Addr(0), 2).expect_err("detected")
    );

    println!("\n== baseline (counter-tree) protected memory ==");
    let mut tree = CounterTreeMemory::new(Key128::derive(b"demo"), 1 << 16);
    tree.write_block(Addr(0), secret);
    let snap = tree.snapshot(Addr(0)).expect("written");
    tree.write_block(Addr(0), [0u8; 64]);
    tree.restore(Addr(0), snap); // replays data + MAC + counter together
    println!(
        "replay vs the tree:    {:?}",
        tree.read_block(Addr(0)).expect_err("detected")
    );
    tree.tamper_counter(Addr(0), 99);
    println!(
        "counter tampering:     {:?}",
        tree.read_block(Addr(0)).expect_err("detected")
    );

    println!("\n== attack against a live secure inference ==");
    let model = registry::model("df").expect("registered");
    let mut runner = SecureRunner::new(&model, Key128::derive(b"victim"), 3);
    runner.step().expect("layer 0 runs clean");
    let victim = runner.layout().outputs[0].addr;
    runner
        .memory_mut()
        .dram_mut()
        .block_mut(victim)
        .expect("written")[0] ^= 0x80;
    match runner.step() {
        Err(RunError::Integrity(e)) => {
            println!("tampered activation caught at the next layer's mvin: {e}");
        }
        other => panic!("attack went undetected: {other:?}"),
    }
    println!("\nall attacks detected; an untampered rerun verifies end to end:");
    let mut clean = SecureRunner::new(&model, Key128::derive(b"victim"), 3);
    clean.run().expect("clean");
    println!(
        "clean run produced {} verified output bytes",
        clean.read_output().expect("ok").len()
    );
}
