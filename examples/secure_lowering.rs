//! The compiler pass of the paper's Fig. 13 (a): lowering a model into the
//! version-annotated secure instruction stream, then replay-checking it.
//!
//! ```text
//! cargo run --release --example secure_lowering
//! ```

use tnpu::models::registry;
use tnpu::npu::alloc::ModelLayout;
use tnpu::npu::config::NpuConfig;
use tnpu::npu::tiler;
use tnpu::sim::Addr;
use tnpu_core::instr::{lower_secure, replay, SecureInstr};

fn render(i: &SecureInstr) -> String {
    match *i {
        SecureInstr::TsWriteTensor {
            tensor,
            bytes,
            version,
        } => {
            format!("ts_write_tensor  t{tensor:<3} {bytes:>9} B        v{version}")
        }
        SecureInstr::Expand { tensor, tiles } => {
            format!("expand           t{tensor:<3} -> {tiles} tile versions")
        }
        SecureInstr::MvinV {
            tensor,
            tile,
            version,
            bytes,
        } => {
            format!("mvin_v           t{tensor:<3} tile {tile:<4} {bytes:>8} B  v{version}")
        }
        SecureInstr::Compute { cycles } => format!("compute          {cycles}"),
        SecureInstr::MvoutV {
            tensor,
            tile,
            version,
            bytes,
        } => {
            format!("mvout_v          t{tensor:<3} tile {tile:<4} {bytes:>8} B  v{version}")
        }
        SecureInstr::Merge { tensor, version } => {
            format!("merge            t{tensor:<3} -> single v{version}")
        }
        SecureInstr::Alias { tensor, version } => {
            format!("alias            t{tensor:<3} (concat view)     v{version}")
        }
    }
}

fn main() {
    // The paper's own example: a ResNet50 layer (Fig. 13 uses the Gemmini
    // ResNet50 code).
    let model = registry::model("res").expect("registered");
    let npu = NpuConfig::small_npu();
    let layout = ModelLayout::allocate(&model, Addr(0));
    let plan = tiler::plan(&model, &npu, &layout, 13);
    let stream = lower_secure(&plan).expect("valid plan");

    println!(
        "lowered {} ({} layers) into {} secure instructions\n",
        model.full_name,
        model.layers.len(),
        stream.len()
    );

    println!("-- initialization (CPU ts_write path) --");
    for i in stream.iter().take(4) {
        println!("  {}", render(i));
    }
    println!(
        "  ... ({} tensors initialized)\n",
        stream
            .iter()
            .filter(|i| matches!(i, SecureInstr::TsWriteTensor { .. }))
            .count()
    );

    // Show one full layer: find the first Expand and print until its Merge.
    let start = stream
        .iter()
        .position(|i| matches!(i, SecureInstr::Expand { .. }))
        .expect("has layers");
    println!("-- first layer's stream (conv1), exactly Fig. 13 (a)'s shape --");
    let mut shown = 0;
    for i in &stream[start..] {
        println!("  {}", render(i));
        shown += 1;
        if matches!(i, SecureInstr::Merge { .. }) || shown > 24 {
            if shown > 24 {
                println!("  ...");
            }
            break;
        }
    }

    replay(&stream).expect("the stream is version-consistent");
    println!("\nreplay check passed: every mvin/mvout annotation matches the");
    println!("version table state at that point — the property the MAC enforces.");
}
