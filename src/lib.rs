#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # TNPU — Trusted Execution with Tree-less Integrity Protection for NPUs
//!
//! A comprehensive Rust reproduction of the HPCA 2022 paper *"TNPU:
//! Supporting Trusted Execution with Tree-less Integrity Protection for
//! Neural Processing Unit"* (Lee, Kim, Na, Park, Huh — KAIST).
//!
//! This facade crate re-exports every workspace crate so examples, tests and
//! downstream users can depend on one entry point:
//!
//! * [`sim`] — simulation substrate (cycles, caches, DRAM model, stats).
//! * [`crypto`] — functional AES-128 / CTR / XTS / SHA-256 / HMAC primitives.
//! * [`memprot`] — memory-protection engines: counter-mode + SC-64 integrity
//!   tree (baseline) and AES-XTS + versioned MAC (tree-less TNPU).
//! * [`tee`] — access control: EEPCM, MMU/IOMMU validation, enclaves,
//!   attestation.
//! * [`models`] — the 14 benchmark DNNs evaluated by the paper.
//! * [`npu`] — the cycle-level systolic-array NPU simulator.
//! * [`core`] — the paper's contribution: version-number management, secure
//!   instruction lowering, the [`core::TnpuSystem`] facade, end-to-end and
//!   hardware-cost models.
//!
//! # Quickstart
//!
//! ```
//! use tnpu::core::{TnpuSystem, Scheme};
//! use tnpu::npu::config::NpuConfig;
//! use tnpu::models::registry;
//!
//! let model = registry::model("df").expect("deepface is registered");
//! let mut system = TnpuSystem::new(NpuConfig::small_npu(), Scheme::Treeless);
//! let report = system.run_inference(&model).expect("secure run succeeds");
//! assert!(report.total_time.0 > 0);
//! ```

pub use tnpu_core as core;
pub use tnpu_crypto as crypto;
pub use tnpu_memprot as memprot;
pub use tnpu_models as models;
pub use tnpu_npu as npu;
pub use tnpu_sim as sim;
pub use tnpu_tee as tee;

/// The handful of types most programs need.
///
/// ```
/// use tnpu::prelude::*;
///
/// let model = registry::model("agz").expect("registered");
/// let mut sys = TnpuSystem::new(NpuConfig::large_npu(), Scheme::Treeless);
/// let report = sys.run_inference(&model).expect("valid model");
/// assert!(report.total_time.0 > 0);
/// ```
pub mod prelude {
    // tnpu-lint: allow(version-table-scope) — facade re-export only; the
    // table itself still lives in (and is managed by) crates/core.
    pub use crate::core::{Scheme, SystemReport, TnpuSystem, VersionTable};
    pub use crate::crypto::Key128;
    pub use crate::models::registry;
    pub use crate::npu::config::NpuConfig;
    pub use crate::sim::Cycles;
}
