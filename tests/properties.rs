//! Property-based tests (proptest) of the core invariants across crates.

use proptest::prelude::*;
use tnpu::crypto::ctr::CtrMode;
use tnpu::crypto::mac::BlockMac;
use tnpu::crypto::xts::XtsMode;
use tnpu::crypto::Key128;
use tnpu::memprot::functional::TreelessMemory;
use tnpu::sim::cache::{AccessKind, Cache, CacheConfig};
use tnpu::sim::{block_count, blocks_covering, Addr};
use tnpu_core::version::{VersionError, VersionTable};

fn arb_block() -> impl Strategy<Value = [u8; 64]> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|v| {
        let mut b = [0u8; 64];
        b.copy_from_slice(&v);
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XTS decrypt(encrypt(x)) == x for any data and unit number.
    #[test]
    fn xts_roundtrip(data in arb_block(), unit in any::<u64>()) {
        let xts = XtsMode::from_master(Key128::derive(b"prop"));
        let mut block = data;
        xts.encrypt_block(unit, &mut block);
        xts.decrypt_block(unit, &mut block);
        prop_assert_eq!(block, data);
    }

    /// CTR-mode application is an involution for any (addr, counter).
    #[test]
    fn ctr_involution(data in arb_block(), addr in any::<u64>(), counter in any::<u64>()) {
        let ctr = CtrMode::new(Key128::derive(b"prop"));
        let mut block = data;
        ctr.apply(addr, counter, &mut block);
        ctr.apply(addr, counter, &mut block);
        prop_assert_eq!(block, data);
    }

    /// A MAC never verifies when any of content, address, or version
    /// changed.
    #[test]
    fn mac_binds_all_inputs(
        data in arb_block(),
        addr in 0u64..1_000_000,
        version in 0u64..1_000_000,
        flip_byte in 0usize..64,
        delta in 1u64..100,
    ) {
        let mac = BlockMac::new(Key128::derive(b"prop"));
        let tag = mac.tag(addr, version, &data);
        prop_assert!(mac.verify(addr, version, &data, tag));
        let mut tampered = data;
        tampered[flip_byte] ^= 0x01;
        prop_assert!(!mac.verify(addr, version, &tampered, tag));
        prop_assert!(!mac.verify(addr + delta, version, &data, tag));
        prop_assert!(!mac.verify(addr, version + delta, &data, tag));
    }

    /// Protected-memory roundtrip for arbitrary data, addresses and
    /// versions; a wrong expected version always fails.
    #[test]
    fn treeless_memory_roundtrip(
        data in arb_block(),
        block_no in 0u64..1_000_000,
        version in 1u64..1_000_000,
    ) {
        let mut mem = TreelessMemory::new(Key128::derive(b"prop"));
        let addr = Addr(block_no * 64);
        mem.write_block(addr, version, data);
        prop_assert_eq!(mem.read_block(addr, version).expect("verifies"), data);
        prop_assert!(mem.read_block(addr, version + 1).is_err());
    }

    /// blocks_covering is consistent with block_count and covers exactly
    /// the bytes of the range.
    #[test]
    fn block_covering_consistency(start in 0u64..1_000_000, len in 0u64..10_000) {
        let blocks: Vec<_> = blocks_covering(Addr(start), len).collect();
        prop_assert_eq!(blocks.len() as u64, block_count(Addr(start), len));
        if len > 0 {
            prop_assert!(blocks.first().expect("non-empty").base().0 <= start);
            let last = blocks.last().expect("non-empty");
            prop_assert!(last.base().0 + 64 >= start + len);
            // Contiguity.
            for pair in blocks.windows(2) {
                prop_assert_eq!(pair[1].0, pair[0].0 + 1);
            }
        }
    }

    /// The cache never reports more lines resident than its capacity, and
    /// re-accessing a just-inserted line always hits.
    #[test]
    fn cache_sanity(addrs in prop::collection::vec(0u64..(1 << 16), 1..200)) {
        let mut cache = Cache::new(CacheConfig::new("prop", 1024, 2, 64));
        for &a in &addrs {
            cache.access(Addr(a * 64), AccessKind::Write);
            prop_assert!(cache.probe(Addr(a * 64)), "just-inserted line must be resident");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses(), addrs.len() as u64);
        prop_assert!(stats.writebacks <= stats.misses);
    }

    /// Version-table discipline: expand -> bump each tile k times ->
    /// merge always round-trips, and merging early always fails unless
    /// every tile was bumped equally.
    #[test]
    fn version_expand_merge_roundtrip(tiles in 1u32..50, rounds in 1u32..5) {
        let mut t = VersionTable::new();
        t.register(0);
        t.expand(0, tiles).expect("expand");
        for _round in 0..rounds {
            for tile in 0..tiles {
                t.bump_tile(0, tile).expect("bump");
                // Mid-round the tile versions are non-uniform, so merging
                // must fail (single-tile tensors are always uniform).
                if tiles > 1 && tile == 0 {
                    prop_assert_eq!(t.merge(0).unwrap_err(), VersionError::TilesNotUniform(0));
                }
            }
        }
        let merged = t.merge(0).expect("uniform");
        prop_assert_eq!(merged, u64::from(rounds));
        prop_assert_eq!(t.version(0, 0).expect("single"), u64::from(rounds));
    }
}

/// Non-proptest: the merge-early failure also holds right after expand
/// once any tile moved.
#[test]
fn merge_after_partial_round_fails() {
    let mut t = VersionTable::new();
    t.register(1);
    t.expand(1, 3).expect("expand");
    t.bump_tile(1, 1).expect("bump");
    assert_eq!(t.merge(1), Err(VersionError::TilesNotUniform(1)));
}
