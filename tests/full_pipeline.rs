//! The adoption scenario end to end: platform boot, context creation with
//! attestation, timing simulation of the protected inference, functional
//! verification of the same model, and the secure instruction stream — all
//! through the public API a downstream user would touch.

use tnpu::prelude::*;
use tnpu_core::context::{SecureNpuSession, NELRANGE_BASE};
use tnpu_core::instr;
use tnpu_npu::alloc::ModelLayout;
use tnpu_npu::tiler;
use tnpu_tee::driver::NpuCommand;
use tnpu_tee::{Access, Vpn, PAGE_SIZE};

#[test]
fn boot_attest_simulate_verify() {
    // 1. Platform boot and context creation.
    let mut session = SecureNpuSession::new(Key128::derive(b"device"), 1);
    let mut ctx = session
        .create_context(b"resnet-inference-app-v1", 8)
        .expect("context");

    // 2. Remote attestation round.
    let nonce = [0x5au8; 16];
    let report = session.attest(&ctx, nonce).expect("live context attests");
    assert!(session.verify(&report, &ctx.measurement, &nonce));

    // 3. The IOMMU serves the tensor range; the driver takes commands.
    let vpn = Vpn(NELRANGE_BASE / PAGE_SIZE + 3);
    session
        .iommu_translate(&mut ctx, vpn, Access::Write)
        .expect("tensor page validates");
    session
        .issue(ctx.enclave, &ctx, NpuCommand::Mvin { version: 1 })
        .expect("owner commands");

    // 4. Timing simulation of the protected inference.
    let model = registry::model("agz").expect("registered");
    let mut system = TnpuSystem::new(NpuConfig::small_npu(), Scheme::Treeless);
    let secure = system.run_inference(&model).expect("valid");
    let unsecure = TnpuSystem::new(NpuConfig::small_npu(), Scheme::Unsecure)
        .run_inference(&model)
        .expect("valid");
    let overhead = secure.total_time.as_f64() / unsecure.total_time.as_f64();
    assert!((1.0..1.5).contains(&overhead), "overhead {overhead:.3}");

    // 5. Functional verification: the same model, real bytes.
    let output = system
        .run_functional(&model, Key128::derive(b"session"), 42)
        .expect("verified run");
    assert!(!output.is_empty());

    // 6. The secure instruction stream for the same plan is consistent.
    let layout = ModelLayout::allocate(&model, tnpu::sim::Addr(0));
    let plan = tiler::plan(&model, system.npu(), &layout, 42);
    let stream = instr::lower_secure(&plan).expect("lowering succeeds");
    instr::replay(&stream).expect("stream verifies");

    // 7. Teardown.
    session.release(ctx).expect("owner releases");
}

#[test]
fn timing_and_functional_agree_on_data_volume() {
    // The timing plan's payload traffic and the functional runner's block
    // movements describe the same inference: the functional runner reads
    // whole tensors (no tiling reuse), so its unique read volume must not
    // exceed the plan's (which re-reads across tiles) by more than the
    // embedding-gather difference.
    let model = registry::model("df").expect("registered");
    let npu = NpuConfig::small_npu();
    let layout = ModelLayout::allocate(&model, tnpu::sim::Addr(0));
    let plan = tiler::plan(&model, &npu, &layout, 9);
    let plan_bytes = plan.data_bytes();

    let mut runner =
        tnpu_core::secure_runner::SecureRunner::new(&model, Key128::derive(b"agree"), 9);
    let traces = runner.run().expect("verifies");
    let functional_blocks: u64 = traces
        .iter()
        .map(|t| t.blocks_read + t.blocks_written)
        .sum();
    let functional_bytes = functional_blocks * 64;
    assert!(
        functional_bytes <= 2 * plan_bytes,
        "functional {functional_bytes} vs plan {plan_bytes}"
    );
    assert!(
        plan_bytes <= 4 * functional_bytes,
        "plan {plan_bytes} vs functional {functional_bytes}"
    );
}
