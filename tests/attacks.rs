//! Cross-crate attack coverage for the rows of the paper's Table I that
//! TNPU defends: malicious system software (access control), bus snooping
//! (confidentiality), tampering (integrity), and cold-boot-style replay
//! (freshness).

use tnpu::crypto::Key128;
use tnpu::memprot::functional::{CounterTreeMemory, IntegrityError, TreelessMemory};
use tnpu::sim::Addr;
use tnpu::tee::enclave::{EnclaveManager, RegionKind};
use tnpu::tee::epcm::Eepcm;
use tnpu::tee::mmu::Mmu;
use tnpu::tee::pagetable::PageTable;
use tnpu::tee::{Access, AccessError, Perms, Ppn, Vpn};
use tnpu_core::secure_runner::{RunError, SecureRunner};

/// Table I row "Malicious System Software": the OS cannot route one
/// enclave's virtual pages onto another enclave's frames, in either the
/// CPU MMU or the NPU IOMMU.
#[test]
fn malicious_os_cannot_cross_enclaves() {
    let mut manager = EnclaveManager::new();
    let mut eepcm = Eepcm::new();
    // Each process has its own page table; the EEPCM is system-wide.
    let mut victim_table = PageTable::new();
    let mut attacker_table = PageTable::new();
    let victim = manager.create();
    let attacker = manager.create();
    manager
        .add_page(
            &mut eepcm,
            &mut victim_table,
            victim,
            Vpn(1),
            Ppn(100),
            RegionKind::Treeless,
            Perms::RW,
            b"v",
        )
        .expect("victim page");
    manager
        .add_page(
            &mut eepcm,
            &mut attacker_table,
            attacker,
            Vpn(1),
            Ppn(200),
            RegionKind::Treeless,
            Perms::RW,
            b"a",
        )
        .expect("attacker page");

    // The OS maps a page of the attacker's address space onto the
    // victim's frame.
    attacker_table.map(Vpn(7), Ppn(100));
    let mut attacker_iommu = Mmu::new(attacker, 16);
    assert_eq!(
        attacker_iommu.translate(&attacker_table, &eepcm, Vpn(7), Access::Read),
        Err(AccessError::WrongOwner { ppn: Ppn(100) })
    );
    // The victim's own access still validates.
    let mut victim_mmu = Mmu::new(victim, 16);
    assert_eq!(
        victim_mmu.translate(&victim_table, &eepcm, Vpn(1), Access::Read),
        Ok(Ppn(100))
    );
}

/// Table I row "Bus snooping": no tensor plaintext is ever observable in
/// DRAM under either scheme.
#[test]
fn bus_snooping_sees_only_ciphertext() {
    let needle = b"PROPRIETARY-WEIGHTS";
    let mut block = [0u8; 64];
    block[..needle.len()].copy_from_slice(needle);

    let mut treeless = TreelessMemory::new(Key128::derive(b"a"));
    treeless.write_block(Addr(0), 1, block);
    assert!(!treeless.dram().contains_bytes(needle));

    let mut tree = CounterTreeMemory::new(Key128::derive(b"b"), 1 << 12);
    tree.write_block(Addr(0), block);
    assert!(!tree.dram().contains_bytes(needle));
}

/// Table I row "Tampering": any single-bit flip anywhere in a protected
/// block is caught by both schemes.
#[test]
fn every_bit_flip_is_detected() {
    let mut treeless = TreelessMemory::new(Key128::derive(b"a"));
    treeless.write_block(Addr(0), 1, [0x5au8; 64]);
    for byte in [0usize, 13, 31, 63] {
        for bit in [0u8, 3, 7] {
            let dram = treeless.dram_mut().block_mut(Addr(0)).expect("written");
            dram[byte] ^= 1 << bit;
            assert!(
                treeless.read_block(Addr(0), 1).is_err(),
                "flip at byte {byte} bit {bit} undetected"
            );
            let dram = treeless.dram_mut().block_mut(Addr(0)).expect("written");
            dram[byte] ^= 1 << bit; // repair
        }
    }
    assert!(
        treeless.read_block(Addr(0), 1).is_ok(),
        "repaired block verifies"
    );
}

/// Replay protection equivalence (§III-B): the tree detects replay via the
/// counter path; TNPU detects it via the software version — and the pure
/// MAC (no version discipline) provably does not.
#[test]
fn replay_protection_equivalence() {
    // Tree-based: full replay of (data, MAC, counter) fails at the root.
    let mut tree = CounterTreeMemory::new(Key128::derive(b"t"), 1 << 12);
    tree.write_block(Addr(64), [1u8; 64]);
    let snap = tree.snapshot(Addr(64)).expect("written");
    tree.write_block(Addr(64), [2u8; 64]);
    tree.restore(Addr(64), snap);
    assert!(matches!(
        tree.read_block(Addr(64)),
        Err(IntegrityError::TreeMismatch { .. })
    ));

    // Tree-less with version discipline: stale MAC fails.
    let mut tnpu = TreelessMemory::new(Key128::derive(b"l"));
    tnpu.write_block(Addr(64), 1, [1u8; 64]);
    let snap = tnpu.snapshot(Addr(64)).expect("written");
    tnpu.write_block(Addr(64), 2, [2u8; 64]);
    tnpu.restore(Addr(64), snap);
    assert!(matches!(
        tnpu.read_block(Addr(64), 2),
        Err(IntegrityError::MacMismatch { .. })
    ));

    // Without the version bump, the replayed block verifies: the version
    // number IS the replay protection.
    let mut broken = TreelessMemory::new(Key128::derive(b"x"));
    broken.write_block(Addr(64), 1, [1u8; 64]);
    let snap = broken.snapshot(Addr(64)).expect("written");
    broken.write_block(Addr(64), 1, [2u8; 64]);
    broken.restore(Addr(64), snap);
    assert_eq!(broken.read_block(Addr(64), 1).expect("verifies"), [1u8; 64]);
}

/// Attacks against a live inference are caught at the next `mvin`,
/// whichever tensor is hit.
#[test]
fn live_inference_attack_coverage() {
    let model = tnpu::models::registry::model("agz").expect("registered");

    // Attack the weights of a later layer while layer 0 runs.
    let mut runner = SecureRunner::new(&model, Key128::derive(b"w"), 5);
    runner.step().expect("layer 0 ok");
    let weights = runner.layout().weights[1].expect("conv weights");
    runner
        .memory_mut()
        .dram_mut()
        .block_mut(weights.addr)
        .expect("initialized")[0] ^= 1;
    assert!(matches!(runner.step(), Err(RunError::Integrity(_))));

    // Attack an activation: relocate a valid block of layer 0's output
    // over another block of the same tensor (same version!) — the
    // address binding in the MAC catches it.
    let mut runner = SecureRunner::new(&model, Key128::derive(b"w"), 5);
    runner.step().expect("layer 0 ok");
    let out = runner.layout().outputs[0];
    let donor = runner.memory_mut().snapshot(out.addr).expect("written");
    runner.memory_mut().restore(out.addr.offset(64), donor);
    assert!(matches!(runner.step(), Err(RunError::Integrity(_))));
}
