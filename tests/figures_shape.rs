//! Shape checks for the paper's headline results, on a reduced sweep so
//! the suite stays fast. The full-suite numbers live in EXPERIMENTS.md and
//! come from `experiments -- all`.

use tnpu::memprot::SchemeKind;
use tnpu::models::registry;
use tnpu::npu::{simulate, simulate_multi, NpuConfig};

fn normalized(model: &str, cfg: &NpuConfig, scheme: SchemeKind) -> f64 {
    let m = registry::model(model).expect("registered");
    let run = simulate(&m, cfg, scheme).total.as_f64();
    let base = simulate(&m, cfg, SchemeKind::Unsecure).total.as_f64();
    run / base
}

/// Fig. 14 shape: unsecure <= tnpu <= baseline, and overheads in the
/// paper's band (a few percent to tens of percent).
#[test]
fn fig14_ordering_and_bands() {
    let small = NpuConfig::small_npu();
    for model in ["alex", "df", "ncf"] {
        let tree = normalized(model, &small, SchemeKind::TreeBased);
        let tnpu = normalized(model, &small, SchemeKind::Treeless);
        assert!(tnpu >= 1.0, "{model}: tnpu {tnpu}");
        assert!(tree >= tnpu, "{model}: tree {tree} vs tnpu {tnpu}");
        assert!(tree < 1.8, "{model}: baseline overhead {tree} out of band");
    }
}

/// Fig. 4/14: sent is the baseline's worst case (embedding gathers), and
/// TNPU recovers most of that loss — the paper's headline example
/// (52.2 % -> 9.4 % degradation).
#[test]
fn sent_is_the_stress_case_and_tnpu_fixes_it() {
    let small = NpuConfig::small_npu();
    let sent_tree = normalized("sent", &small, SchemeKind::TreeBased);
    let sent_tnpu = normalized("sent", &small, SchemeKind::Treeless);
    let alex_tree = normalized("alex", &small, SchemeKind::TreeBased);
    assert!(
        sent_tree > alex_tree + 0.1,
        "sent ({sent_tree:.3}) must stand out vs conv models ({alex_tree:.3})"
    );
    let recovered = (sent_tree - sent_tnpu) / (sent_tree - 1.0);
    assert!(
        recovered > 0.5,
        "tnpu should recover most of sent's overhead, got {recovered:.2}"
    );
}

/// Fig. 5 shape: embedding models show clearly higher counter-cache miss
/// rates than conv models.
#[test]
fn fig5_miss_rate_ordering() {
    let small = NpuConfig::small_npu();
    let miss = |name: &str| {
        let m = registry::model(name).expect("registered");
        simulate(&m, &small, SchemeKind::TreeBased)
            .engine
            .counter_cache
            .miss_rate()
    };
    assert!(miss("sent") > 2.0 * miss("alex"));
    assert!(miss("ncf") > 1.5 * miss("df"));
}

/// Fig. 15 shape: the baseline moves more metadata than TNPU; TNPU's
/// extra traffic is MAC-dominated (~12.5 % + epsilon).
#[test]
fn fig15_traffic_ordering() {
    let small = NpuConfig::small_npu();
    for model in ["alex", "sent"] {
        let m = registry::model(model).expect("registered");
        let unsec = simulate(&m, &small, SchemeKind::Unsecure);
        let tree = simulate(&m, &small, SchemeKind::TreeBased);
        let tnpu = simulate(&m, &small, SchemeKind::Treeless);
        let base_ratio = tree.total_traffic() as f64 / unsec.data_traffic() as f64;
        let tnpu_ratio = tnpu.total_traffic() as f64 / unsec.data_traffic() as f64;
        assert!(
            base_ratio > tnpu_ratio,
            "{model}: {base_ratio:.3} vs {tnpu_ratio:.3}"
        );
        assert!(
            (1.10..1.35).contains(&tnpu_ratio),
            "{model}: tnpu traffic {tnpu_ratio:.3} should be MAC-dominated"
        );
    }
}

/// Fig. 16 shape: TNPU's improvement over the baseline does not shrink as
/// NPUs are added (the shared metadata caches hurt the baseline more).
#[test]
fn fig16_gap_grows_with_npu_count() {
    let small = NpuConfig::small_npu();
    let m = registry::model("ncf").expect("registered");
    let slowest = |scheme, n| {
        simulate_multi(&m, &small, scheme, n)
            .iter()
            .map(|r| r.total.0)
            .max()
            .expect("non-empty") as f64
    };
    let improvement = |n| {
        let u = slowest(SchemeKind::Unsecure, n);
        let b = slowest(SchemeKind::TreeBased, n) / u;
        let t = slowest(SchemeKind::Treeless, n) / u;
        (b - t) / b
    };
    let one = improvement(1);
    let three = improvement(3);
    assert!(
        three >= 0.9 * one,
        "improvement should persist or grow: 1 NPU {one:.3}, 3 NPUs {three:.3}"
    );
}

/// The encryption-only ablation (scalable-SGX-like) bounds TNPU from
/// below: integrity (MACs + versions) is the gap between them.
#[test]
fn encrypt_only_bounds_tnpu() {
    let small = NpuConfig::small_npu();
    let m = registry::model("alex").expect("registered");
    let enc = simulate(&m, &small, SchemeKind::EncryptOnly).total;
    let tnpu = simulate(&m, &small, SchemeKind::Treeless).total;
    let unsec = simulate(&m, &small, SchemeKind::Unsecure).total;
    assert!(enc >= unsec);
    assert!(tnpu > enc, "MACs must cost something over pure encryption");
}

/// Large vs small NPU: the baseline's overhead is larger on the small NPU
/// (21.1 % vs 17.3 % in the paper).
#[test]
fn small_npu_suffers_more() {
    let mut small_sum = 0.0;
    let mut large_sum = 0.0;
    let models = ["alex", "df", "ncf", "sent"];
    for model in models {
        small_sum += normalized(model, &NpuConfig::small_npu(), SchemeKind::TreeBased);
        large_sum += normalized(model, &NpuConfig::large_npu(), SchemeKind::TreeBased);
    }
    assert!(
        small_sum > large_sum,
        "small {small_sum:.3} vs large {large_sum:.3}"
    );
}
